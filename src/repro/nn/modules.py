"""Module system and core layers.

Mirrors the familiar ``torch.nn`` surface at the scale this reproduction
needs: attribute-based parameter registration, recursive ``state_dict``,
train/eval mode propagation, and the basic layers (Linear, Embedding,
LayerNorm, Dropout, feed-forward) used by every encoder.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Iterator

import numpy as np

from . import init
from .fused import feed_forward as feed_forward_fn
from .fused import layer_norm as layer_norm_fn
from .fused import linear as linear_fn
from .ops import dropout as dropout_fn
from .ops import dropout_mask as dropout_mask_fn
from .ops import embedding as embedding_fn
from .tensor import Parameter, Tensor, get_default_dtype, no_grad

__all__ = [
    "Module", "ModuleList", "Sequential", "Linear", "Embedding",
    "LayerNorm", "Dropout", "FeedForward", "Identity", "inference_mode",
]


@contextlib.contextmanager
def inference_mode(module):
    """Eval mode + ``no_grad`` for the block, restoring train mode after.

    The shared wrapper for catalogue/row encoding: the recursive mode
    walk is skipped entirely when the module is already in eval (the
    serving steady state pays nothing), and restoration is
    exception-safe.
    """
    was_training = bool(getattr(module, "training", False))
    if was_training:
        module.eval()
    try:
        with no_grad():
            yield
    finally:
        if was_training:
            module.train(True)


class Module:
    """Base class for all neural network modules.

    Parameters (:class:`repro.nn.Parameter`) and sub-modules assigned as
    attributes are registered automatically and traversed recursively by
    :meth:`parameters`, :meth:`state_dict` and :meth:`train`.
    """

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training: bool = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ------------------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- train / eval ------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- dtype ----------------------------------------------------------------

    @property
    def param_dtype(self) -> np.dtype:
        """Dtype of this module's parameters (ambient default if it has none)."""
        for param in self.parameters():
            return param.data.dtype
        return get_default_dtype()

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter (and pending gradient) to ``dtype`` in place.

        Call this *before* constructing an optimizer: Adam/SGD snapshot
        their moment/velocity buffers from the parameter dtype at
        construction time and will not follow a later cast.
        """
        dtype = np.dtype(dtype)
        for param in self.parameters():
            param.data = param.data.astype(dtype, copy=False)
            if param.grad is not None:
                param.grad = param.grad.astype(dtype, copy=False)
        return self

    # -- serialization --------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat mapping of dotted parameter names to array copies."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray],
                        strict: bool = True) -> None:
        """Load parameter values in place from :meth:`state_dict` output.

        The load is *atomic*: every key and shape is validated before any
        parameter is written, so a bad checkpoint can never leave the
        module half-loaded — which is what makes in-process hot-swapping
        (``repro.stream``) safe to retry after a failed load. Strict mode
        (the default) raises on missing or unexpected keys; shape
        mismatches raise in both modes, reporting every offending key at
        once rather than the first.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}")
        staged: list[tuple["Parameter", np.ndarray]] = []
        mismatched: list[str] = []
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.shape:
                mismatched.append(f"{name}: checkpoint {value.shape} "
                                  f"vs module {param.shape}")
            else:
                staged.append((param, value))
        if mismatched:
            raise ValueError("state_dict shape mismatch for "
                             f"{len(mismatched)} parameter(s): "
                             + "; ".join(mismatched))
        for param, value in staged:
            param.data = value.copy()

    # -- call protocol --------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """Hold an ordered list of sub-modules."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        name = str(len(self._items))
        self._modules[name] = module
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class Identity(Module):
    """No-op layer, useful as a default pluggable component."""

    def forward(self, x):
        return x


class Linear(Module):
    """Affine transform ``x @ W + b`` (one fused graph node)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None, dtype=None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng), dtype=dtype)
        self.bias = Parameter(np.zeros(out_features), dtype=dtype) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return linear_fn(x, self.weight, self.bias)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    ``padding_idx`` rows start at zero; their gradient updates are harmless
    because padded positions are always masked out of the losses.
    """

    def __init__(self, num_embeddings: int, dim: int,
                 padding_idx: int | None = None,
                 rng: np.random.Generator | None = None, dtype=None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.padding_idx = padding_idx
        table = init.normal((num_embeddings, dim), std=0.02, rng=rng)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.weight = Parameter(table, dtype=dtype)

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_fn(self.weight, np.asarray(indices))

    def prefix(self, length: int) -> Tensor:
        """First ``length`` rows as a ``(length, dim)`` tensor.

        Positional tables are almost always looked up with a broadcast
        ``arange`` — slicing the table and letting the caller broadcast-add
        it replaces a batch-sized gather (and its scatter-add backward)
        with a view plus one lazy sum-reduction.
        """
        return self.weight[:length]


class LayerNorm(Module):
    """Layer normalization over the last axis.

    Runs through the fused one-node kernel
    (:func:`repro.nn.fused.layer_norm`); ``REPRO_FUSED=0`` restores the
    unfused mean/var/scale composition.
    """

    def __init__(self, dim: int, eps: float = 1e-5, dtype=None):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), dtype=dtype)
        self.beta = Parameter(np.zeros(dim), dtype=dtype)

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm_fn(x, self.gamma, self.beta, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by an owned RNG for reproducibility.

    Inactive dropout — ``rate == 0`` or eval mode — is a true
    passthrough: the input tensor is returned as-is with no graph node,
    no RNG draw, not even a dispatch into :func:`repro.nn.dropout`.
    """

    def __init__(self, rate: float, seed: int = 0):
        super().__init__()
        self.rate = rate
        # SFC64: same-seed reproducible like PCG64 but ~40% faster to
        # draw from — mask generation is pure overhead in every training
        # step, and dropout only needs decorrelated uniforms.
        self._rng = np.random.Generator(np.random.SFC64(seed))

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate <= 0.0:
            return x
        return dropout_fn(x, self.rate, self._rng, training=True)

    def mask_for(self, shape: tuple[int, ...], dtype) -> np.ndarray | None:
        """Draw the keep/scale mask this layer would apply to ``shape``.

        Returns ``None`` when dropout is inactive (no RNG draw). The mask
        already carries the ``1/(1-rate)`` inverted-dropout scaling, and
        consumes the exact same RNG values as :meth:`forward` would, so
        callers that fold dropout into a fused kernel (multi-head
        attention) stay numerically identical to the unfused composition.
        """
        if not self.training or self.rate <= 0.0:
            return None
        return dropout_mask_fn(shape, self.rate, self._rng, dtype)


class FeedForward(Module):
    """Transformer position-wise feed-forward block with GELU.

    The whole chain — linear, exact GELU, inverted dropout, linear —
    runs as one fused graph node (:func:`repro.nn.fused.feed_forward`);
    ``REPRO_FUSED=0`` restores the four-op composition.
    """

    def __init__(self, dim: int, hidden_dim: int, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, dim, rng=rng)
        self.drop = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        drop_mask = self.drop.mask_for(x.shape[:-1] + (self.hidden_dim,),
                                       x.data.dtype)
        return feed_forward_fn(x, self.fc1.weight, self.fc1.bias,
                               self.fc2.weight, self.fc2.bias,
                               dropout_mask=drop_mask)
