"""Clustering and binary-code primitives for approximate retrieval.

``repro.serve.ann`` builds its IVF coarse quantizer and LSH codes from
two numpy-level primitives that live here, below the serving stack:

* :func:`kmeans` — memory-bounded Lloyd's iterations with optional
  warm-start centroids, which is what makes *incremental* index
  refreshes cheap (a re-encoded catalogue re-clusters from the previous
  centroids in a couple of iterations instead of from scratch);
* :func:`sign_codes` / :func:`hamming_distances` — random-hyperplane
  sign codes packed to ``uint8`` and table-driven popcount distances.

Everything is plain numpy on purpose: these run inside the serving
request path and index-refresh path, never under autograd.

(``repro.baselines.vqrec`` carries its own small k-means: its centroids
feed committed, cache-keyed experiment tables, so its numerics are
frozen — do not unify it with this serving-grade implementation.)
"""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans", "kmeans_assign", "sign_codes", "hamming_distances"]

#: Bits set per byte value, for vectorized popcounts on packed codes.
_POPCOUNT = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None],
                          axis=1).sum(axis=1).astype(np.uint16)

#: numpy >= 2.0 ships a hardware popcount; the table is the fallback.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def kmeans_assign(data: np.ndarray, centroids: np.ndarray,
                  chunk_size: int = 8192) -> np.ndarray:
    """Nearest-centroid assignment for each row of ``data``.

    Uses the ``|x|^2 - 2 x·c + |c|^2`` expansion and processes ``data``
    in chunks so the ``(n, k)`` distance matrix never exceeds
    ``chunk_size * k`` floats — catalogue-scale inputs (10^5 rows, 10^3
    centroids) assign in bounded memory.
    """
    data = np.asarray(data)
    centroids = np.asarray(centroids, dtype=data.dtype)
    cent_sq = (centroids ** 2).sum(axis=1)
    out = np.empty(len(data), dtype=np.int64)
    for lo in range(0, len(data), chunk_size):
        chunk = data[lo:lo + chunk_size]
        # |x|^2 is constant per row — irrelevant to the argmin.
        dists = cent_sq[None, :] - 2.0 * (chunk @ centroids.T)
        out[lo:lo + chunk_size] = dists.argmin(axis=1)
    return out


def kmeans(data: np.ndarray, num_clusters: int, iters: int = 10,
           seed: int = 0, init: np.ndarray | None = None,
           chunk_size: int = 8192) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means; returns ``(centroids, assignments)``.

    ``init`` warm-starts from previous centroids (shape ``(k', d)``;
    ``k'`` may differ from ``num_clusters`` — extra rows are dropped,
    missing rows are sampled from ``data``), which converges in a
    fraction of the cold-start iterations when ``data`` drifted only a
    little (the online index-refresh case). Empty clusters are re-seeded
    from the rows currently farthest from their centroid, so all
    ``num_clusters`` centroids stay live.
    """
    data = np.asarray(data)
    if data.ndim != 2 or len(data) == 0:
        raise ValueError(f"kmeans needs a non-empty (n, d) matrix, "
                         f"got shape {data.shape}")
    num_clusters = min(int(num_clusters), len(data))
    if num_clusters < 1:
        raise ValueError("num_clusters must be >= 1")
    rng = np.random.default_rng(seed)
    if init is not None and len(init) and init.shape[1] == data.shape[1]:
        centroids = np.asarray(init, dtype=data.dtype)[:num_clusters].copy()
        if len(centroids) < num_clusters:
            extra = rng.choice(len(data), num_clusters - len(centroids),
                               replace=False)
            centroids = np.concatenate([centroids, data[extra]])
    else:
        centroids = data[rng.choice(len(data), num_clusters,
                                    replace=False)].copy()
    assignments = kmeans_assign(data, centroids, chunk_size=chunk_size)
    for _ in range(max(int(iters), 1)):
        counts = np.bincount(assignments, minlength=num_clusters)
        # Per-dimension bincount beats np.add.at's unbuffered scatter;
        # this accumulation runs inside every online index refresh.
        sums = np.stack(
            [np.bincount(assignments, weights=data[:, j],
                         minlength=num_clusters)
             for j in range(data.shape[1])], axis=1).astype(centroids.dtype)
        live = counts > 0
        centroids[live] = sums[live] / counts[live, None]
        if not live.all():
            # Re-seed dead clusters on the worst-fit rows.
            dists = ((data - centroids[assignments]) ** 2).sum(axis=1)
            worst = np.argsort(-dists)[:int((~live).sum())]
            centroids[~live] = data[worst]
        new_assignments = kmeans_assign(data, centroids,
                                        chunk_size=chunk_size)
        if np.array_equal(new_assignments, assignments):
            assignments = new_assignments
            break
        assignments = new_assignments
    return centroids, assignments


def sign_codes(vectors: np.ndarray, hyperplanes: np.ndarray) -> np.ndarray:
    """Packed random-hyperplane sign codes ``(n, ceil(bits/8))`` uint8.

    Bit ``j`` of a row's code is 1 when the row has a non-negative
    projection onto hyperplane ``j`` — the classic SimHash family whose
    collision probability is ``1 - angle/pi`` per bit, so hamming
    distance between codes estimates angular distance between vectors.
    """
    vectors = np.atleast_2d(np.asarray(vectors))
    projections = vectors @ hyperplanes          # (n, bits)
    return np.packbits(projections >= 0.0, axis=1)


def hamming_distances(codes: np.ndarray, query_code: np.ndarray) -> np.ndarray:
    """Hamming distance from each packed row of ``codes`` to ``query_code``.

    Codes whose byte width is a multiple of 8 take the ``uint64`` +
    hardware-popcount path (8 bytes per op instead of a table lookup per
    byte); anything else falls back to the 256-entry table.
    """
    query_code = np.asarray(query_code, dtype=np.uint8).reshape(1, -1)
    if (_HAS_BITWISE_COUNT and codes.shape[1] % 8 == 0
            and codes.flags.c_contiguous):
        wide = codes.view(np.uint64)
        query_wide = np.ascontiguousarray(query_code).view(np.uint64)
        return np.bitwise_count(wide ^ query_wide).sum(axis=1)
    return _POPCOUNT[np.bitwise_xor(codes, query_code)].sum(axis=1)
