"""Multi-head attention and Transformer encoder blocks.

Used for every Transformer in the paper: the RoBERTa-style text encoder,
the ViT vision encoder, the merge-attention fusion block (Eq. 3) and the
SASRec-style user encoder (Eq. 4, causal variant).

The scaled-dot-product chain runs through the fused one-node kernel
(:func:`repro.nn.fused.scaled_dot_product_attention`); set
``REPRO_FUSED=0`` to restore the unfused matmul/softmax composition.
Constant masks are cached so training loops don't rebuild them on every
forward call.
"""

from __future__ import annotations

import functools

import numpy as np

from .fused import (fusion_enabled, multi_head_attention,
                    scaled_dot_product_attention, transformer_block)
from .modules import Dropout, FeedForward, LayerNorm, Linear, Module
from .tensor import Tensor

__all__ = ["MultiHeadAttention", "TransformerBlock", "causal_mask",
           "padding_mask"]


@functools.lru_cache(maxsize=128)
def _causal_mask_cached(length: int) -> np.ndarray:
    mask = np.triu(np.ones((length, length), dtype=bool), k=1)
    mask.setflags(write=False)
    return mask


def causal_mask(length: int) -> np.ndarray:
    """Boolean ``(length, length)`` mask; True marks *disallowed* positions.

    Cached per length (training loops call this every step with the same
    sequence length); the returned array is read-only — copy before
    mutating.
    """
    return _causal_mask_cached(int(length))


@functools.lru_cache(maxsize=128)
def _no_padding_mask_cached(batch: int, length: int) -> np.ndarray:
    mask = np.zeros((batch, 1, 1, length), dtype=bool)
    mask.setflags(write=False)
    return mask


def padding_mask(valid: np.ndarray) -> np.ndarray:
    """Turn a ``(batch, length)`` validity mask into an attention mask.

    Returns boolean ``(batch, 1, 1, length)``; True marks key positions
    that must not be attended to (padding). Fully-valid batches (vision
    patches, fusion streams without text padding) hit a per-shape cache
    instead of re-allocating an all-False mask each call; the cached
    array is read-only.
    """
    valid = np.asarray(valid, dtype=bool)
    if valid.all():
        return _no_padding_mask_cached(valid.shape[0], valid.shape[1])
    return ~valid[:, None, None, :]


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``num_heads`` parallel heads."""

    def __init__(self, dim: int, num_heads: int, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim={dim} not divisible by num_heads={num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self.drop = Dropout(dropout)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.num_heads, self.head_dim) \
                .transpose(0, 2, 1, 3)

    def forward(self, query: Tensor, key: Tensor | None = None,
                value: Tensor | None = None,
                mask: np.ndarray | None = None) -> Tensor:
        """Attend ``query`` over ``key``/``value`` (self-attention if omitted).

        ``mask`` is boolean, broadcastable to ``(batch, heads, q_len, k_len)``
        with True marking disallowed attention edges.
        """
        batch, q_len, _ = query.shape
        k_len = query.shape[1] if key is None else key.shape[1]

        # The attention-weight dropout mask is drawn here (same RNG
        # stream as the unfused composition used) and folded into the
        # fused node, so fused and unfused paths stay numerically
        # identical draw for draw.
        drop_mask = self.drop.mask_for((batch, self.num_heads, q_len, k_len),
                                       query.data.dtype)
        if key is None and value is None:
            # Self-attention (every Transformer in the repo): the whole
            # projection/split/attend/merge/project chain is one node.
            return multi_head_attention(
                query, self.q_proj.weight, self.q_proj.bias,
                self.k_proj.weight, self.k_proj.bias,
                self.v_proj.weight, self.v_proj.bias,
                self.out_proj.weight, self.out_proj.bias,
                num_heads=self.num_heads, mask=mask,
                scale=self.head_dim ** -0.5, dropout_mask=drop_mask)

        key = query if key is None else key
        value = key if value is None else value
        q = self._split_heads(self.q_proj(query), batch, q_len)
        k = self._split_heads(self.k_proj(key), batch, k_len)
        v = self._split_heads(self.v_proj(value), batch, k_len)
        context = scaled_dot_product_attention(
            q, k, v, mask=mask, scale=self.head_dim ** -0.5,
            dropout_mask=drop_mask)
        context = context.transpose(0, 2, 1, 3).reshape(batch, q_len, self.dim)
        return self.out_proj(context)


class TransformerBlock(Module):
    """Pre-LN Transformer encoder block (MHA + FFN with residuals)."""

    def __init__(self, dim: int, num_heads: int, ffn_dim: int | None = None,
                 dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        ffn_dim = ffn_dim or 4 * dim
        self.attn = MultiHeadAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.ffn = FeedForward(dim, ffn_dim, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.drop = Dropout(dropout)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        if fusion_enabled():
            # The entire layer is one fused node. The four dropout masks
            # are drawn here in the same order the unfused composition
            # draws them, so both paths consume identical RNG streams.
            batch, length, _ = x.shape
            dtype = x.data.dtype
            attn = self.attn
            m_attn = attn.drop.mask_for(
                (batch, attn.num_heads, length, length), dtype)
            m_out1 = self.drop.mask_for(x.shape, dtype)
            m_ffn = self.ffn.drop.mask_for(
                x.shape[:-1] + (self.ffn.hidden_dim,), dtype)
            m_out2 = self.drop.mask_for(x.shape, dtype)
            return transformer_block(
                x,
                {"ln1_g": self.norm1.gamma, "ln1_b": self.norm1.beta,
                 "wq": attn.q_proj.weight, "bq": attn.q_proj.bias,
                 "wk": attn.k_proj.weight, "bk": attn.k_proj.bias,
                 "wv": attn.v_proj.weight, "bv": attn.v_proj.bias,
                 "wo": attn.out_proj.weight, "bo": attn.out_proj.bias,
                 "ln2_g": self.norm2.gamma, "ln2_b": self.norm2.beta,
                 "w1": self.ffn.fc1.weight, "b1": self.ffn.fc1.bias,
                 "w2": self.ffn.fc2.weight, "b2": self.ffn.fc2.bias},
                num_heads=attn.num_heads, eps=self.norm1.eps,
                eps2=self.norm2.eps, mask=mask,
                attn_dropout_mask=m_attn, ffn_dropout_mask=m_ffn,
                out1_dropout_mask=m_out1, out2_dropout_mask=m_out2)
        x = x + self.drop(self.attn(self.norm1(x), mask=mask))
        x = x + self.drop(self.ffn(self.norm2(x)))
        return x
