"""Multi-head attention and Transformer encoder blocks.

Used for every Transformer in the paper: the RoBERTa-style text encoder,
the ViT vision encoder, the merge-attention fusion block (Eq. 3) and the
SASRec-style user encoder (Eq. 4, causal variant).
"""

from __future__ import annotations

import numpy as np

from .modules import Dropout, FeedForward, LayerNorm, Linear, Module
from .ops import masked_fill, softmax
from .tensor import Tensor

__all__ = ["MultiHeadAttention", "TransformerBlock", "causal_mask", "padding_mask"]


def causal_mask(length: int) -> np.ndarray:
    """Boolean ``(length, length)`` mask; True marks *disallowed* positions."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)


def padding_mask(valid: np.ndarray) -> np.ndarray:
    """Turn a ``(batch, length)`` validity mask into an attention mask.

    Returns boolean ``(batch, 1, 1, length)``; True marks key positions that
    must not be attended to (padding).
    """
    valid = np.asarray(valid, dtype=bool)
    return ~valid[:, None, None, :]


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``num_heads`` parallel heads."""

    def __init__(self, dim: int, num_heads: int, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim={dim} not divisible by num_heads={num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self.drop = Dropout(dropout)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.num_heads, self.head_dim) \
                .transpose(0, 2, 1, 3)

    def forward(self, query: Tensor, key: Tensor | None = None,
                value: Tensor | None = None,
                mask: np.ndarray | None = None) -> Tensor:
        """Attend ``query`` over ``key``/``value`` (self-attention if omitted).

        ``mask`` is boolean, broadcastable to ``(batch, heads, q_len, k_len)``
        with True marking disallowed attention edges.
        """
        key = query if key is None else key
        value = key if value is None else value
        batch, q_len, _ = query.shape
        k_len = key.shape[1]

        q = self._split_heads(self.q_proj(query), batch, q_len)
        k = self._split_heads(self.k_proj(key), batch, k_len)
        v = self._split_heads(self.v_proj(value), batch, k_len)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (self.head_dim ** -0.5)
        if mask is not None:
            scores = masked_fill(scores, np.broadcast_to(mask, scores.shape))
        weights = self.drop(softmax(scores, axis=-1))
        context = weights @ v
        context = context.transpose(0, 2, 1, 3).reshape(batch, q_len, self.dim)
        return self.out_proj(context)


class TransformerBlock(Module):
    """Pre-LN Transformer encoder block (MHA + FFN with residuals)."""

    def __init__(self, dim: int, num_heads: int, ffn_dim: int | None = None,
                 dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        ffn_dim = ffn_dim or 4 * dim
        self.attn = MultiHeadAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.ffn = FeedForward(dim, ffn_dim, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.drop = Dropout(dropout)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = x + self.drop(self.attn(self.norm1(x), mask=mask))
        x = x + self.drop(self.ffn(self.norm2(x)))
        return x
