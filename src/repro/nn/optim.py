"""Optimizers, gradient clipping and learning-rate schedules.

The paper trains with AdamW and early stopping; we provide SGD, Adam and
AdamW (decoupled weight decay, Loshchilov & Hutter 2019) plus global-norm
gradient clipping and warmup/cosine schedules.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .tensor import Parameter

__all__ = ["SGD", "Adam", "AdamW", "clip_grad_norm", "WarmupCosineSchedule",
           "ConstantSchedule"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, which the trainer logs to detect
    exploding gradients.
    """
    params = [p for p in parameters if p.grad is not None]
    total = math.sqrt(sum(float(np.dot(p.grad.reshape(-1), p.grad.reshape(-1)))
                          for p in params))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale  # in place: backward() owns the grad buffers
    return total


class _Optimizer:
    """Shared bookkeeping: parameter list, zero_grad, lr handling."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Copy-out of the optimizer's mutable state (moments, counters).

        Together with the module's ``state_dict`` this is everything a
        caller needs to roll a training step sequence back — the
        streaming worker snapshots both before every fine-tune round so
        a failed round can never leave a half-applied update behind.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict` (copy-in)."""


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0.0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad

    def state_dict(self) -> dict:
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        for v, saved in zip(self._velocity, state["velocity"]):
            np.copyto(v, saved)


class Adam(_Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Two shared flat scratch buffers, sized to the largest
        # parameter: the update loop is strictly sequential, so every
        # parameter reuses reshaped views of the same memory and a step
        # allocates nothing. Op order mirrors the textbook expressions
        # bit for bit.
        biggest = max(p.size for p in self.parameters)
        widest = np.result_type(*(p.data.dtype for p in self.parameters))
        self._scratch1 = np.empty(biggest, dtype=widest)
        self._scratch2 = np.empty(biggest, dtype=widest)
        self._t = 0

    def _scratch_views(self, p: Parameter) -> tuple[np.ndarray, np.ndarray]:
        """Per-parameter views of the shared scratch buffers."""
        s1 = self._scratch1[:p.size].view(p.data.dtype)[:p.size]
        s2 = self._scratch2[:p.size].view(p.data.dtype)[:p.size]
        return s1.reshape(p.data.shape), s2.reshape(p.data.shape)

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            s1, s2 = self._scratch_views(p)
            grad = p.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * p.data  # L2, coupled
            m *= b1
            np.multiply(grad, 1.0 - b1, out=s1)     # (1-b1) * grad
            m += s1
            v *= b2
            np.multiply(grad, 1.0 - b2, out=s1)     # (1-b2) * grad * grad
            s1 *= grad
            v += s1
            np.divide(v, bias2, out=s2)             # sqrt(v/bias2) + eps
            np.sqrt(s2, out=s2)
            s2 += self.eps
            np.divide(m, bias1, out=s1)             # (m/bias1) / denom
            s1 /= s2
            s1 *= self.lr
            p.data -= s1

    def state_dict(self) -> dict:
        return {"m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v],
                "t": self._t}

    def load_state_dict(self, state: dict) -> None:
        for m, saved in zip(self._m, state["m"]):
            np.copyto(m, saved)
        for v, saved in zip(self._v, state["v"]):
            np.copyto(v, saved)
        self._t = int(state["t"])


class AdamW(Adam):
    """Adam with decoupled weight decay (the paper's optimizer)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01):
        super().__init__(parameters, lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_decay = weight_decay

    def step(self) -> None:
        if self.decoupled_decay > 0.0:
            factor = self.lr * self.decoupled_decay
            for p in self.parameters:
                if p.grad is not None:
                    s1, _ = self._scratch_views(p)
                    np.multiply(p.data, factor, out=s1)
                    p.data -= s1
        super().step()


class ConstantSchedule:
    """Keep the optimizer learning rate fixed."""

    def __init__(self, optimizer: _Optimizer):
        self.optimizer = optimizer

    def step(self) -> None:  # pragma: no cover - trivially nothing to do
        pass


class WarmupCosineSchedule:
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(self, optimizer: _Optimizer, warmup_steps: int,
                 total_steps: int, min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = max(warmup_steps, 0)
        self.total_steps = total_steps
        self.min_lr = min_lr
        self._step = 0

    def step(self) -> None:
        self._step += 1
        if self.warmup_steps and self._step <= self.warmup_steps:
            lr = self.base_lr * self._step / self.warmup_steps
        else:
            done = min(self._step, self.total_steps)
            span = max(self.total_steps - self.warmup_steps, 1)
            progress = (done - self.warmup_steps) / span
            lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
                1.0 + math.cos(math.pi * progress))
        self.optimizer.lr = lr
