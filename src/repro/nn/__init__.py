"""``repro.nn`` — a numpy reverse-mode autodiff engine with NN layers.

This subpackage replaces PyTorch for the reproduction (see DESIGN.md §1):
tensors with autograd, transformer / recurrent / convolutional layers,
optimizers and checkpointing. Gradient correctness is property-tested
against finite differences.
"""

from .attention import MultiHeadAttention, TransformerBlock, causal_mask, padding_mask
from .cluster import hamming_distances, kmeans, kmeans_assign, sign_codes
from .convolution import CausalConv1d, NextItNetResidualBlock
from .fused import (feed_forward, fusion_enabled, info_nce, layer_norm,
                    linear, multi_head_attention,
                    scaled_dot_product_attention, softmax_cross_entropy,
                    transformer_block, use_fused)
from .modules import (Dropout, Embedding, FeedForward, Identity, LayerNorm,
                      Linear, Module, ModuleList, Sequential, inference_mode)
from .ops import (cosine_similarity, cross_entropy, dropout, dropout_mask,
                  embedding, gelu, log_softmax, masked_fill,
                  softmax, take_rows, topk)
from .optim import (Adam, AdamW, ConstantSchedule, SGD, WarmupCosineSchedule,
                    clip_grad_norm)
from .recurrent import GRU, GRUCell
from .serialization import (CHECKPOINT_FORMAT, checkpoint_meta, filter_state,
                            load_checkpoint, save_checkpoint, strip_prefix)
from .tensor import (Parameter, Tensor, as_tensor, concat, default_dtype,
                     get_default_dtype, is_grad_enabled, no_grad,
                     scatter_add_rows, set_default_dtype, stack, where)

__all__ = [
    "Tensor", "Parameter", "as_tensor", "concat", "stack", "where",
    "no_grad", "is_grad_enabled",
    "default_dtype", "get_default_dtype", "set_default_dtype",
    "Module", "ModuleList", "Sequential", "Identity", "inference_mode",
    "Linear", "Embedding", "LayerNorm", "Dropout", "FeedForward",
    "MultiHeadAttention", "TransformerBlock", "causal_mask", "padding_mask",
    "GRU", "GRUCell", "CausalConv1d", "NextItNetResidualBlock",
    "softmax", "log_softmax", "cross_entropy", "embedding", "take_rows",
    "topk", "gelu", "masked_fill", "dropout", "info_nce", "cosine_similarity",
    "fusion_enabled", "use_fused", "scaled_dot_product_attention",
    "multi_head_attention", "transformer_block", "softmax_cross_entropy",
    "layer_norm", "linear", "feed_forward", "dropout_mask",
    "kmeans", "kmeans_assign", "sign_codes", "hamming_distances",
    "SGD", "Adam", "AdamW", "clip_grad_norm",
    "ConstantSchedule", "WarmupCosineSchedule",
    "save_checkpoint", "load_checkpoint", "checkpoint_meta",
    "CHECKPOINT_FORMAT", "filter_state", "strip_prefix",
    "scatter_add_rows",
]
