"""Functional neural-network operations built on the autograd engine.

These are the composite ops every model in the reproduction relies on:
numerically-stable softmax / log-softmax, cross-entropy, embedding lookup
with scatter-add backward, GELU, attention masking helpers and the InfoNCE
contrastive objective shared by the paper's Eq. 5–11 losses.

All ops are dtype-preserving: constant masks and fill values are cast to
the dtype of the tensor flowing through, so a float32 graph stays float32
end to end, and every op takes the closure-free fast path under
``no_grad``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from .tensor import (Tensor, as_tensor, is_grad_enabled, scatter_add_rows,
                     where)

__all__ = [
    "softmax", "log_softmax", "cross_entropy", "embedding", "gelu",
    "masked_fill", "dropout", "dropout_mask", "info_nce",
    "cosine_similarity", "take_rows", "topk",
]

_NEG_INF = -1e9
_INV_SQRT2 = 1.0 / math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)

# Abramowitz & Stegun 7.1.26 coefficients for the float32 erf path.
_ERF_P = np.float32(0.3275911)
_ERF_A = tuple(np.float32(a) for a in
               (1.061405429, -1.453152027, 1.421413741,
                -0.284496736, 0.254829592))


def _erf_f32(z: np.ndarray) -> np.ndarray:
    """Vectorized single-precision erf (A&S 7.1.26, |err| < 7e-7).

    ``scipy.special.erf`` runs a scalar cephes loop that costs ~40x an
    SIMD ``np.exp`` pass and dominates every GELU call; this polynomial
    version is accurate to a few float32 ulps and several times faster.
    ``z`` is treated as a scratch-owned input (not modified); the result
    is a fresh array.
    """
    a5, a4, a3, a2, a1 = _ERF_A
    ax = np.abs(z)
    t = ax * _ERF_P
    t += 1.0
    np.reciprocal(t, out=t)
    r = t * a5
    r += a4
    r *= t
    r += a3
    r *= t
    r += a2
    r *= t
    r += a1
    r *= t
    ax *= ax
    np.negative(ax, out=ax)
    np.exp(ax, out=ax)
    r *= ax
    np.subtract(np.float32(1.0), r, out=r)
    return np.copysign(r, z, out=r)


def erf_(z: np.ndarray) -> np.ndarray:
    """Error function over a caller-owned scratch buffer.

    float64 uses scipy's cephes kernel (exact to double precision, in
    place); float32 uses the vectorized :func:`_erf_f32` approximation —
    the precision/speed trade the float32 experiment harness already
    embraces.
    """
    if z.dtype == np.float32:
        return _erf_f32(z)
    return special.erf(z, out=z)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor._wrap(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor._wrap(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int | None = None) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer ``targets``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(..., num_classes)``.
    targets:
        Integer array of shape ``(...)``.
    ignore_index:
        Target value whose positions are excluded from the mean
        (used for padded sequence positions).
    """
    targets = np.asarray(targets)
    logp = log_softmax(logits, axis=-1)
    flat = logp.reshape(-1, logp.shape[-1])
    idx = targets.reshape(-1)
    if ignore_index is not None:
        keep = idx != ignore_index
        if not keep.any():
            return Tensor(0.0, dtype=flat.data.dtype)
        safe_idx = np.where(keep, idx, 0)
        picked = flat[np.arange(flat.shape[0]), safe_idx]
        picked = picked * Tensor._wrap(keep.astype(flat.data.dtype))
        return -(picked.sum() / float(keep.sum()))
    picked = flat[np.arange(flat.shape[0]), idx]
    return -picked.mean()


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` (num_embeddings, dim) by integer indices.

    The backward pass scatter-adds gradients into the rows that were used
    (sorted runs + ``np.add.reduceat`` rather than per-element
    ``np.add.at``), which keeps sparse lookups exact even with repeated
    indices while touching each unique row once.
    """
    indices = np.asarray(indices)
    out_data = weight.data[indices]
    if not (is_grad_enabled() and weight.requires_grad):
        return Tensor._wrap(out_data)
    flat_indices = indices.reshape(-1)

    def backward(g):
        full = np.zeros_like(weight.data)
        scatter_add_rows(full, flat_indices,
                         g.reshape(-1, weight.shape[-1]))
        return (full,)

    return Tensor._node(out_data, (weight,), backward)


def take_rows(matrix: Tensor, row_indices: np.ndarray) -> Tensor:
    """Differentiable ``matrix[row_indices]`` (alias of :func:`embedding`)."""
    return embedding(matrix, row_indices)


def topk(scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise top-``k`` of a score matrix: ``(values, indices)``.

    Results are ordered by descending score with ties broken by lower
    index — exactly a stable descending sort truncated to ``k`` — but
    computed with ``np.argpartition`` (O(n + k log k) per row instead of
    O(n log n)), which is what makes full-catalogue retrieval cheap at
    serving time. ``k`` larger than the row length is clamped. A 1-D
    input returns 1-D outputs.
    """
    scores = np.asarray(scores)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    single = scores.ndim == 1
    mat = scores[None, :] if single else scores
    if mat.ndim != 2:
        raise ValueError(f"scores must be 1-D or 2-D, got shape {scores.shape}")
    n = mat.shape[-1]
    k = min(int(k), n)
    if k == n:
        idx = np.argsort(-mat, axis=-1, kind="stable")
    else:
        part = np.argpartition(-mat, k - 1, axis=-1)[:, :k]
        vals = np.take_along_axis(mat, part, axis=-1)
        # argpartition returns *a* top-k set; when the cut value also
        # occurs outside it, the stable-sort contract keeps the lowest
        # indices, so those rows are rebuilt exactly.
        cut = vals.min(axis=-1)
        selected_at_cut = (vals == cut[:, None]).sum(axis=-1)
        total_at_cut = (mat == cut[:, None]).sum(axis=-1)
        for row in np.flatnonzero(total_at_cut > selected_at_cut):
            above = np.flatnonzero(mat[row] > cut[row])
            tied = np.flatnonzero(mat[row] == cut[row])[:k - above.size]
            part[row] = np.concatenate([above, tied])
            vals[row] = mat[row, part[row]]
        order = np.lexsort((part, -vals), axis=-1)
        idx = np.take_along_axis(part, order, axis=-1)
    out_vals = np.take_along_axis(mat, idx, axis=-1)
    if single:
        return out_vals[0], idx[0]
    return out_vals, idx


def gelu(x: Tensor) -> Tensor:
    """Exact GELU using the Gauss error function.

    The erf/exp are evaluated into the scratch buffer in place — the
    erf ufunc dominates this op's cost, so the surrounding chain should
    not add allocation passes on top of it.
    """
    x = as_tensor(x)
    cdf = erf_(x.data * _INV_SQRT2)
    cdf += 1.0
    cdf *= 0.5
    out_data = x.data * cdf
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor._wrap(out_data)

    def backward(g):
        pdf = x.data * x.data
        pdf *= -0.5
        np.exp(pdf, out=pdf)
        pdf *= _INV_SQRT_2PI
        pdf *= x.data
        pdf += cdf
        return (g * pdf,)

    return Tensor._node(out_data, (x,), backward)


def masked_fill(x: Tensor, mask: np.ndarray, value: float = _NEG_INF) -> Tensor:
    """Set positions where ``mask`` is True to ``value`` (mask is constant)."""
    x = as_tensor(x)
    fill = Tensor._wrap(np.full(x.shape, value, dtype=x.data.dtype))
    return where(np.asarray(mask, dtype=bool), fill, x)


def dropout_mask(shape: tuple[int, ...], rate: float,
                 rng: np.random.Generator, dtype) -> np.ndarray:
    """Keep/scale mask for inverted dropout (includes the ``1/(1-rate)``).

    Draws are always float64 so a float32 and a float64 run of the same
    seed keep *identical* drop patterns — the cross-precision
    comparability the float32 experiment harness relies on.
    """
    keep = (rng.random(shape) >= rate).astype(dtype)
    # Multiply by the reciprocal: bitwise identical on a 0/1 array
    # (0*s == 0/(1-r), 1*s == 1/(1-r)) and ~3x cheaper than division.
    keep *= 1.0 / (1.0 - rate)
    return keep


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-rate)``."""
    if not training or rate <= 0.0:
        return x
    return x * Tensor._wrap(dropout_mask(x.shape, rate, rng, x.data.dtype))


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Cosine similarity along ``axis`` with L2 normalization."""
    return (a.l2_normalize(axis=axis) * b.l2_normalize(axis=axis)).sum(axis=axis)


def info_nce(scores: Tensor, positive_mask: np.ndarray,
             candidate_mask: np.ndarray | None = None) -> Tensor:
    """Generalized InfoNCE over a score matrix.

    Computes ``-log(sum_pos exp(s) / sum_cand exp(s))`` per row and averages.
    This single primitive expresses DAP (Eq. 5), VCL (Eq. 6), ICL (Eq. 7),
    NICL (Eq. 8) and RCL (Eq. 11): each differs only in how the score matrix
    and its positive / candidate masks are constructed.

    Parameters
    ----------
    scores:
        ``(rows, cols)`` similarity scores (already temperature-scaled).
    positive_mask:
        Boolean ``(rows, cols)``; True marks positive pairs (the numerator
        terms). Rows without any positive are skipped. Positives need NOT
        be a subset of the candidates — PMMRec's NICL (Eq. 8) puts its
        next-item positives in the numerator only.
    candidate_mask:
        Boolean ``(rows, cols)``; True marks scores in the denominator.
        Defaults to all-True.
    """
    positive_mask = np.asarray(positive_mask, dtype=bool)
    if candidate_mask is None:
        candidate_mask = np.ones_like(positive_mask)
    candidate_mask = np.asarray(candidate_mask, dtype=bool)
    valid_rows = positive_mask.any(axis=1)
    if not valid_rows.any():
        return Tensor(0.0, dtype=scores.data.dtype)
    dtype = scores.data.dtype

    # Stabilize with the max over every score that will be exponentiated
    # (candidates and positives); everything else is masked to -inf first.
    union = candidate_mask | positive_mask
    masked = masked_fill(scores, ~union)
    row_max = Tensor._wrap(masked.data.max(axis=1, keepdims=True))
    exp = (masked - row_max).exp()
    denom = (exp * Tensor._wrap(candidate_mask.astype(dtype))).sum(axis=1)
    numer = (exp * Tensor._wrap(positive_mask.astype(dtype))).sum(axis=1)
    # Rows without positives contribute zero loss; pad their log args to 1
    # so that 0 * log(0) never produces a NaN in forward or backward.
    pad = Tensor._wrap((~valid_rows).astype(dtype))
    losses = ((denom + pad).log() - (numer + pad).log())
    losses = losses * Tensor._wrap(valid_rows.astype(dtype))
    return losses.sum() / float(valid_rows.sum())
