"""Parameter initialization schemes.

All initializers accept an optional ``np.random.Generator`` so model
construction is fully deterministic given a seed — a requirement for the
experiment harness, which must regenerate the paper's tables bit-for-bit
across runs.

Initializers draw in float64 (so a given seed produces the same values
regardless of precision) and cast to ``dtype`` — the ambient default dtype
unless overridden — on the way out.
"""

from __future__ import annotations

import numpy as np

from .tensor import get_default_dtype

__all__ = ["xavier_uniform", "xavier_normal", "normal", "truncated_normal",
           "default_rng"]

_DEFAULT_SEED = 0


def default_rng(rng: np.random.Generator | None) -> np.random.Generator:
    """Return ``rng`` or a deterministic fallback generator."""
    if rng is None:
        return np.random.default_rng(_DEFAULT_SEED)
    return rng


def _cast(values: np.ndarray, dtype) -> np.ndarray:
    return values.astype(dtype if dtype is not None else get_default_dtype(),
                         copy=False)


def xavier_uniform(shape: tuple[int, ...],
                   rng: np.random.Generator | None = None,
                   dtype=None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    rng = default_rng(rng)
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def xavier_normal(shape: tuple[int, ...],
                  rng: np.random.Generator | None = None,
                  dtype=None) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    rng = default_rng(rng)
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _cast(rng.normal(0.0, std, size=shape), dtype)


def normal(shape: tuple[int, ...], std: float = 0.02,
           rng: np.random.Generator | None = None,
           dtype=None) -> np.ndarray:
    """Gaussian init, the BERT-style default for embeddings."""
    rng = default_rng(rng)
    return _cast(rng.normal(0.0, std, size=shape), dtype)


def truncated_normal(shape: tuple[int, ...], std: float = 0.02,
                     rng: np.random.Generator | None = None,
                     bound_stds: float = 2.0,
                     dtype=None) -> np.ndarray:
    """Gaussian init truncated at ``bound_stds`` standard deviations."""
    rng = default_rng(rng)
    values = rng.normal(0.0, std, size=shape)
    limit = bound_stds * std
    return _cast(np.clip(values, -limit, limit), dtype)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
