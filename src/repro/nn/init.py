"""Parameter initialization schemes.

All initializers accept an optional ``np.random.Generator`` so model
construction is fully deterministic given a seed — a requirement for the
experiment harness, which must regenerate the paper's tables bit-for-bit
across runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "normal", "truncated_normal", "default_rng"]

_DEFAULT_SEED = 0


def default_rng(rng: np.random.Generator | None) -> np.random.Generator:
    """Return ``rng`` or a deterministic fallback generator."""
    if rng is None:
        return np.random.default_rng(_DEFAULT_SEED)
    return rng


def xavier_uniform(shape: tuple[int, ...],
                   rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    rng = default_rng(rng)
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...],
                  rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    rng = default_rng(rng)
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def normal(shape: tuple[int, ...], std: float = 0.02,
           rng: np.random.Generator | None = None) -> np.ndarray:
    """Gaussian init, the BERT-style default for embeddings."""
    rng = default_rng(rng)
    return rng.normal(0.0, std, size=shape)


def truncated_normal(shape: tuple[int, ...], std: float = 0.02,
                     rng: np.random.Generator | None = None,
                     bound_stds: float = 2.0) -> np.ndarray:
    """Gaussian init truncated at ``bound_stds`` standard deviations."""
    rng = default_rng(rng)
    values = rng.normal(0.0, std, size=shape)
    limit = bound_stds * std
    return np.clip(values, -limit, limit)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
