"""Fused composite autograd nodes for the Transformer hot chain.

With the closure-free ``no_grad`` path in place, op *dispatch* — one
Python-level graph node per numpy op — is the dominant remaining cost of
training (ROADMAP NEXT). Every Transformer in the paper (RoBERTa text
encoder, ViT, the merge-attention fusion of Eq. 3, the SASRec user
encoder) pays that cost per layer per step, so the chains they all share
are collapsed here into single forward/backward pairs:

* :func:`transformer_block` — an entire pre-LN layer
  (LN → MHA → dropout → residual → LN → FFN → dropout → residual) as
  ONE node; :func:`multi_head_attention` and
  :func:`scaled_dot_product_attention` cover the standalone attention
  chains (softmax Jacobian folded into the backward closure, no
  intermediate Tensor graph nodes).
* :func:`layer_norm`, :func:`linear`, :func:`feed_forward` — the
  remaining per-layer chains as one node each.
* :func:`softmax_cross_entropy` — log-softmax + negative-log-likelihood
  gather + masked mean as one node; the backward pass is the classic
  ``softmax(logits) - onehot`` expression.
* :func:`info_nce` — the generalized contrastive objective behind the
  paper's Eq. 5–11 losses, with the closed-form
  ``cand·softmax_cand − pos·softmax_pos`` backward.

Each op mirrors the unfused composition's floating-point operation order
exactly, so the fused forward is bit-for-bit identical to the graph it
replaces — eval metrics, serving ranks and checkpoints are unaffected.

The escape hatch: fusion is on by default and controlled by the
``REPRO_FUSED`` environment variable (``REPRO_FUSED=0`` restores the
unfused multi-node composition everywhere) or, programmatically and with
higher precedence, the :func:`use_fused` context manager. The parity
suite (``tests/nn/test_fused.py``) runs both paths against each other
and against finite differences; CI runs the fast tests under both
settings.
"""

from __future__ import annotations

import contextlib
import os
import threading

import numpy as np
from ..obs import prof
from . import ops as _ops
from .ops import _INV_SQRT2, _INV_SQRT_2PI, _NEG_INF, cross_entropy, erf_, \
    gelu, masked_fill, softmax
from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = ["fusion_enabled", "use_fused", "scaled_dot_product_attention",
           "multi_head_attention", "transformer_block",
           "softmax_cross_entropy", "layer_norm", "linear", "feed_forward",
           "info_nce"]

_FUSED_ENV = "REPRO_FUSED"


class _OverrideStack(threading.local):
    """Per-thread ``use_fused`` nesting (list-shaped: append/pop/[-1]).

    Thread-local for the same reason as the engine's gradient gate: a
    ``TrainConfig(fused=...)`` pin on the streaming fine-tune thread
    must not flip kernel dispatch under concurrent serving threads (and
    vice versa).
    """

    def __init__(self):
        self._stack: list[bool] = []

    def append(self, value: bool) -> None:
        self._stack.append(value)

    def pop(self) -> bool:
        return self._stack.pop()

    def __getitem__(self, index: int) -> bool:
        return self._stack[index]

    def __len__(self) -> int:
        return len(self._stack)


_OVERRIDE = _OverrideStack()


def fusion_enabled() -> bool:
    """Whether fused composite nodes are active.

    A :func:`use_fused` context wins over the ``REPRO_FUSED`` environment
    variable; the environment variable defaults to on.
    """
    if _OVERRIDE:
        return _OVERRIDE[-1]
    return os.environ.get(_FUSED_ENV, "1") != "0"


@contextlib.contextmanager
def use_fused(flag: bool):
    """Scope fused-kernel dispatch on (``True``) or off (``False``)."""
    _OVERRIDE.append(bool(flag))
    try:
        yield
    finally:
        _OVERRIDE.pop()


# -- attention -----------------------------------------------------------------
#
# The masked-softmax attention core is shared by every fused attention
# kernel (sdpa, one-node MHA, the whole-layer transformer_block) so the
# subtle numerics — in-place softmax op order (the bit-for-bit parity
# guarantee), the dropout-mask fold, the fully-masked-row gradient
# zeroing — exist exactly once.


def _attn_forward(qd: np.ndarray, kd: np.ndarray, vd: np.ndarray,
                  mask: np.ndarray | None, scale: float,
                  dropout_mask: np.ndarray | None):
    """Fused ``softmax(q@kT*scale + mask) * drop @ v`` on raw arrays.

    Returns ``(out, weights, applied)`` where ``weights`` are the
    pre-dropout softmax weights and ``applied`` the dropped ones (same
    array when dropout is inactive); both are needed by
    :func:`_attn_backward`.
    """
    scores = qd @ np.swapaxes(kd, -1, -2)
    scores *= scale
    if mask is not None:
        np.copyto(scores, scores.dtype.type(_NEG_INF),
                  where=np.broadcast_to(mask, scores.shape))
    # In-place numerically-stable softmax; ``scores`` becomes the weights.
    np.subtract(scores, scores.max(axis=-1, keepdims=True), out=scores)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    weights = scores
    applied = weights if dropout_mask is None else weights * dropout_mask
    return applied @ vd, weights, applied


def _attn_backward(g: np.ndarray, qd: np.ndarray, kd: np.ndarray,
                   vd: np.ndarray, weights: np.ndarray, applied: np.ndarray,
                   mask: np.ndarray | None, scale: float,
                   dropout_mask: np.ndarray | None):
    """Gradients ``(gq, gk, gv)`` of :func:`_attn_forward`."""
    gv = np.swapaxes(applied, -1, -2) @ g
    gw = g @ np.swapaxes(vd, -1, -2)
    if dropout_mask is not None:
        gw *= dropout_mask
    gs = weights * (gw - (gw * weights).sum(axis=-1, keepdims=True))
    if mask is not None:
        # Fully-masked rows have uniform weights; the unfused path's
        # masked_fill blocks their gradient, so zero it here too.
        np.copyto(gs, gs.dtype.type(0),
                  where=np.broadcast_to(mask, gs.shape))
    gs *= scale
    return gs @ kd, np.swapaxes(gs, -1, -2) @ qd, gv


@prof.profiled("fused.attention")
def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 mask: np.ndarray | None = None,
                                 scale: float | None = None,
                                 dropout_mask: np.ndarray | None = None
                                 ) -> Tensor:
    """Fused ``softmax(q @ k.T * scale + mask) @ v`` as one graph node.

    Parameters
    ----------
    q, k, v:
        ``(..., Lq, D)``, ``(..., Lk, D)`` and ``(..., Lk, Dv)`` tensors;
        leading (batch/head) axes follow numpy broadcasting.
    mask:
        Boolean array broadcastable to ``(..., Lq, Lk)``; True marks
        *disallowed* attention edges (filled with ``-1e9`` before the
        softmax, exactly like :func:`repro.nn.masked_fill`).
    scale:
        Score scale; defaults to ``D ** -0.5``.
    dropout_mask:
        Optional keep/scale array (already including the ``1/(1-p)``
        inverted-dropout factor) multiplied onto the softmax weights.
        Passing the mask explicitly keeps the RNG stream identical
        between the fused and unfused paths.

    The backward pass folds the softmax Jacobian in:
    ``dS = W * (dW - sum(dW * W, axis=-1))`` with ``W`` the (pre-dropout)
    attention weights, then ``dQ = dS @ K * scale`` and
    ``dK = dS.T @ Q * scale``; no intermediate graph nodes are built.
    """
    q, k, v = as_tensor(q), as_tensor(k), as_tensor(v)
    if scale is None:
        scale = q.shape[-1] ** -0.5
    scale = float(scale)

    if not fusion_enabled():
        scores = (q @ k.swapaxes(-1, -2)) * scale
        if mask is not None:
            scores = masked_fill(scores,
                                 np.broadcast_to(mask, scores.shape))
        weights = softmax(scores, axis=-1)
        if dropout_mask is not None:
            weights = weights * Tensor._wrap(np.asarray(dropout_mask))
        return weights @ v

    qd, kd, vd = q.data, k.data, v.data
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
    out, weights, applied = _attn_forward(qd, kd, vd, mask, scale,
                                          dropout_mask)
    if not (is_grad_enabled()
            and (q.requires_grad or k.requires_grad or v.requires_grad)):
        return Tensor._wrap(out)

    def backward(g):
        return _attn_backward(g, qd, kd, vd, weights, applied, mask,
                              scale, dropout_mask)

    return Tensor._node(out, (q, k, v), backward)


@prof.profiled("fused.mha")
def multi_head_attention(x: Tensor, wq: Tensor, bq: Tensor, wk: Tensor,
                         bk: Tensor, wv: Tensor, bv: Tensor, wo: Tensor,
                         bo: Tensor, num_heads: int,
                         mask: np.ndarray | None = None,
                         scale: float | None = None,
                         dropout_mask: np.ndarray | None = None) -> Tensor:
    """One-node multi-head *self*-attention.

    The full chain — q/k/v projections, head split, scaled dot-product
    attention with masking and weight dropout, head merge, output
    projection — as a single forward/backward pair. This is the hot op
    of every Transformer in the paper; fusing it removes ~13 graph nodes
    (4 affine, 8 reshape/transpose views, plus the attention chain) per
    layer per step.

    ``x`` is ``(B, L, D)``; the weights are the module's ``(D, D)``
    projection matrices with ``(D,)`` biases. Semantics of ``mask`` /
    ``scale`` / ``dropout_mask`` match
    :func:`scaled_dot_product_attention`.
    """
    x = as_tensor(x)
    params = [as_tensor(t) for t in (wq, bq, wk, bk, wv, bv, wo, bo)]
    wq, bq, wk, bk, wv, bv, wo, bo = params
    batch, length, dim = x.shape
    head_dim = dim // num_heads
    if scale is None:
        scale = head_dim ** -0.5
    scale = float(scale)

    def split(t: Tensor) -> Tensor:
        return t.reshape(batch, length, num_heads, head_dim) \
                .transpose(0, 2, 1, 3)

    if not fusion_enabled():
        q = split(linear(x, wq, bq))
        k = split(linear(x, wk, bk))
        v = split(linear(x, wv, bv))
        context = scaled_dot_product_attention(
            q, k, v, mask=mask, scale=scale, dropout_mask=dropout_mask)
        context = context.transpose(0, 2, 1, 3).reshape(batch, length, dim)
        return linear(context, wo, bo)

    xd = x.data
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
    raw = tuple(p.data for p in params)
    out, saved = _mha_forward(xd, raw, num_heads, mask, scale, dropout_mask)
    needs = x.requires_grad or any(p.requires_grad for p in params)
    if not (is_grad_enabled() and needs):
        return Tensor._wrap(out)

    def backward(g):
        return _mha_backward(g, xd, raw, num_heads, mask, scale,
                             dropout_mask, saved)

    return Tensor._node(out, (x, *params), backward)


def _mha_forward(xd: np.ndarray, raw: tuple, num_heads: int,
                 mask: np.ndarray | None, scale: float,
                 dropout_mask: np.ndarray | None):
    """Projection/split/attend/merge/project on raw arrays.

    ``raw`` is ``(wq, bq, wk, bk, wv, bv, wo, bo)``. Returns
    ``(out, saved)`` with everything :func:`_mha_backward` needs.
    """
    wq, bq, wk, bk, wv, bv, wo, bo = raw
    batch, length, dim = xd.shape
    head_dim = dim // num_heads
    q = xd @ wq
    q += bq
    k = xd @ wk
    k += bk
    v = xd @ wv
    v += bv
    q4 = q.reshape(batch, length, num_heads, head_dim).transpose(0, 2, 1, 3)
    k4 = k.reshape(batch, length, num_heads, head_dim).transpose(0, 2, 1, 3)
    v4 = v.reshape(batch, length, num_heads, head_dim).transpose(0, 2, 1, 3)
    ctx4, weights, applied = _attn_forward(q4, k4, v4, mask, scale,
                                           dropout_mask)
    ctx = ctx4.transpose(0, 2, 1, 3).reshape(batch, length, dim)
    out = ctx @ wo
    out += bo
    return out, (q4, k4, v4, weights, applied, ctx)


def _mha_backward(g: np.ndarray, xd: np.ndarray, raw: tuple, num_heads: int,
                  mask: np.ndarray | None, scale: float,
                  dropout_mask: np.ndarray | None, saved: tuple):
    """Gradients of :func:`_mha_forward` in parameter order
    ``(gx, gwq, gbq, gwk, gbk, gwv, gbv, gwo, gbo)``."""
    wq, bq, wk, bk, wv, bv, wo, bo = raw
    q4, k4, v4, weights, applied, ctx = saved
    batch, length, dim = xd.shape
    head_dim = dim // num_heads

    def merge(t4: np.ndarray) -> np.ndarray:
        return t4.transpose(0, 2, 1, 3).reshape(batch, length, dim)

    gwo = ctx.reshape(-1, dim).T @ g.reshape(-1, dim)
    gbo = g.sum(axis=(0, 1))
    gctx4 = (g @ wo.T).reshape(batch, length, num_heads, head_dim) \
        .transpose(0, 2, 1, 3)
    gq4, gk4, gv4 = _attn_backward(gctx4, q4, k4, v4, weights, applied,
                                   mask, scale, dropout_mask)
    gq, gk, gv = merge(gq4), merge(gk4), merge(gv4)
    gx = gq @ wq.T
    gx += gk @ wk.T
    gx += gv @ wv.T
    x2t = xd.reshape(-1, dim).T
    return (gx, x2t @ gq.reshape(-1, dim), gq.sum(axis=(0, 1)),
            x2t @ gk.reshape(-1, dim), gk.sum(axis=(0, 1)),
            x2t @ gv.reshape(-1, dim), gv.sum(axis=(0, 1)), gwo, gbo)


def _ln_forward(xd: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                eps: float):
    """Shared fused-LN forward; mirrors Tensor.mean's op order exactly."""
    inv_n = 1.0 / xd.shape[-1]
    mu = xd.sum(axis=-1, keepdims=True) * inv_n
    xc = xd - mu
    var = (xc * xc).sum(axis=-1, keepdims=True) * inv_n
    inv_std = (var + eps) ** -0.5
    xc *= inv_std          # xc becomes xhat in place
    xhat = xc
    out = xhat * gamma
    out += beta
    return out, xhat, inv_std


def _ln_backward(g: np.ndarray, xhat: np.ndarray, inv_std: np.ndarray,
                 gamma: np.ndarray, lead: tuple[int, ...]):
    """Closed-form fused-LN backward: ``(gx, ggamma, gbeta)``."""
    inv_n = 1.0 / xhat.shape[-1]
    gxhat = g * gamma
    m1 = gxhat.sum(axis=-1, keepdims=True) * inv_n
    m2 = (gxhat * xhat).sum(axis=-1, keepdims=True) * inv_n
    ggamma = (g * xhat).sum(axis=lead)
    # gxhat is dead after this point; reuse it as the gx buffer.
    gxhat -= m1
    gxhat -= xhat * m2
    gxhat *= inv_std
    return gxhat, ggamma, g.sum(axis=lead)


def _gelu_ffn_forward(xd: np.ndarray, w1: np.ndarray, b1: np.ndarray,
                      w2: np.ndarray, b2: np.ndarray,
                      dropout_mask: np.ndarray | None):
    """linear → exact GELU → dropout → linear on raw arrays.

    Returns ``(out, pre, cdf, hidden)``; the GELU op order matches
    :func:`repro.nn.gelu` exactly (erf in a scratch buffer).
    """
    pre = xd @ w1
    pre += b1
    cdf = erf_(pre * _INV_SQRT2)
    cdf += 1.0
    cdf *= 0.5
    hidden = pre * cdf
    if dropout_mask is not None:
        hidden *= dropout_mask
    out = hidden @ w2
    out += b2
    return out, pre, cdf, hidden


def _gelu_ffn_backward(g: np.ndarray, xd: np.ndarray, w1: np.ndarray,
                       w2: np.ndarray, pre: np.ndarray, cdf: np.ndarray,
                       hidden: np.ndarray, dropout_mask: np.ndarray | None,
                       lead: tuple[int, ...]):
    """Gradients ``(gx, gw1, gb1, gw2, gb2)`` of :func:`_gelu_ffn_forward`."""
    gw2 = hidden.reshape(-1, hidden.shape[-1]).T @ g.reshape(-1, g.shape[-1])
    gb2 = g.sum(axis=lead)
    ghid = g @ w2.T
    if dropout_mask is not None:
        ghid *= dropout_mask
    # d gelu(pre) = cdf + pre * pdf(pre), reusing the forward's cdf.
    dact = pre * pre
    dact *= -0.5
    np.exp(dact, out=dact)
    dact *= _INV_SQRT_2PI
    dact *= pre
    dact += cdf
    gpre = ghid * dact
    gw1 = xd.reshape(-1, xd.shape[-1]).T @ gpre.reshape(-1, gpre.shape[-1])
    gb1 = gpre.sum(axis=lead)
    gx = gpre @ w1.T
    return gx, gw1, gb1, gw2, gb2


@prof.profiled("fused.transformer_block")
def transformer_block(x: Tensor, params: dict, num_heads: int, eps: float,
                      mask: np.ndarray | None = None,
                      attn_dropout_mask: np.ndarray | None = None,
                      ffn_dropout_mask: np.ndarray | None = None,
                      out1_dropout_mask: np.ndarray | None = None,
                      out2_dropout_mask: np.ndarray | None = None,
                      eps2: float | None = None) -> Tensor:
    """An entire pre-LN Transformer layer as ONE graph node.

    Computes ``y = x + drop(MHA(LN1(x)))`` then
    ``out = y + drop(FFN(LN2(y)))`` with all four dropout masks drawn by
    the caller (preserving the unfused RNG order). ``params`` maps the
    layer's 17 tensors: ``ln1_g ln1_b wq bq wk bk wv bv wo bo ln2_g
    ln2_b w1 b1 w2 b2`` — the caller (``nn.TransformerBlock``) passes its
    registered parameters, so optimizers and ``state_dict`` are
    untouched. ``eps`` belongs to LN1; ``eps2`` to LN2 (defaults to
    ``eps``). The backward pass chains the closed-form LN, attention and
    FFN gradients by hand; no intermediate nodes exist.
    """
    x = as_tensor(x)
    order = ("ln1_g", "ln1_b", "wq", "bq", "wk", "bk", "wv", "bv",
             "wo", "bo", "ln2_g", "ln2_b", "w1", "b1", "w2", "b2")
    p = {name: as_tensor(params[name]) for name in order}
    eps2 = eps if eps2 is None else eps2

    if not fusion_enabled():
        # Escape hatch: the same layer as the multi-node composition
        # (each sibling op dispatches its own unfused branch here).
        h = layer_norm(x, p["ln1_g"], p["ln1_b"], eps=eps)
        attn = multi_head_attention(
            h, p["wq"], p["bq"], p["wk"], p["bk"], p["wv"], p["bv"],
            p["wo"], p["bo"], num_heads=num_heads, mask=mask,
            dropout_mask=attn_dropout_mask)
        if out1_dropout_mask is not None:
            attn = attn * Tensor._wrap(out1_dropout_mask)
        y = x + attn
        h2 = layer_norm(y, p["ln2_g"], p["ln2_b"], eps=eps2)
        ffn = feed_forward(h2, p["w1"], p["b1"], p["w2"], p["b2"],
                           dropout_mask=ffn_dropout_mask)
        if out2_dropout_mask is not None:
            ffn = ffn * Tensor._wrap(out2_dropout_mask)
        return y + ffn

    xd = x.data
    scale = (xd.shape[-1] // num_heads) ** -0.5
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
    mha_raw = tuple(p[name].data for name in order[2:10])

    # LN1 -> MHA -> dropout -> residual
    h, xhat1, inv1 = _ln_forward(xd, p["ln1_g"].data, p["ln1_b"].data, eps)
    attn, mha_saved = _mha_forward(h, mha_raw, num_heads, mask, scale,
                                   attn_dropout_mask)
    if out1_dropout_mask is not None:
        attn *= out1_dropout_mask
    y = xd + attn

    # LN2 -> FFN -> dropout -> residual
    h2, xhat2, inv2 = _ln_forward(y, p["ln2_g"].data, p["ln2_b"].data, eps2)
    ffn, pre, cdf, hidden = _gelu_ffn_forward(
        h2, p["w1"].data, p["b1"].data, p["w2"].data, p["b2"].data,
        ffn_dropout_mask)
    if out2_dropout_mask is not None:
        ffn *= out2_dropout_mask
    out = y + ffn

    tensors = (x,) + tuple(p[name] for name in order)
    if not (is_grad_enabled() and any(t.requires_grad for t in tensors)):
        return Tensor._wrap(out)
    lead = (0, 1)

    def backward(g):
        # FFN half, back to the residual stream y.
        gffn = g if out2_dropout_mask is None else g * out2_dropout_mask
        gh2, gw1, gb1, gw2, gb2 = _gelu_ffn_backward(
            gffn, h2, p["w1"].data, p["w2"].data, pre, cdf, hidden,
            ffn_dropout_mask, lead)
        gy_ln2, gg2, gbln2 = _ln_backward(gh2, xhat2, inv2,
                                          p["ln2_g"].data, lead)
        gy = g + gy_ln2

        # Attention half, back to the input x.
        gattn = gy if out1_dropout_mask is None else gy * out1_dropout_mask
        gh, gwq, gbq, gwk, gbk, gwv, gbv, gwo, gbo = _mha_backward(
            gattn, h, mha_raw, num_heads, mask, scale, attn_dropout_mask,
            mha_saved)
        gx_ln1, gg1, gbln1 = _ln_backward(gh, xhat1, inv1,
                                          p["ln1_g"].data, lead)
        gx = gy + gx_ln1
        return (gx, gg1, gbln1, gwq, gbq, gwk, gbk, gwv, gbv, gwo, gbo,
                gg2, gbln2, gw1, gb1, gw2, gb2)

    return Tensor._node(out, tensors, backward)


# -- training loss -------------------------------------------------------------


@prof.profiled("fused.cross_entropy")
def softmax_cross_entropy(logits: Tensor, targets: np.ndarray,
                          ignore_index: int | None = None) -> Tensor:
    """Fused mean cross-entropy between ``logits`` and integer ``targets``.

    Drop-in replacement for :func:`repro.nn.cross_entropy` (same
    signature, same value bit-for-bit) that builds ONE graph node instead
    of the log-softmax / gather / mask / mean chain. The backward pass is
    ``(softmax(logits) - onehot(targets)) * upstream / count`` with
    ignored positions zeroed.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets)
    if not fusion_enabled():
        return cross_entropy(logits, targets, ignore_index=ignore_index)

    data = logits.data
    flat = data.reshape(-1, data.shape[-1])
    idx = targets.reshape(-1)
    n = flat.shape[0]
    rows = np.arange(n)
    if ignore_index is not None:
        keep = idx != ignore_index
        if not keep.any():
            return Tensor(0.0, dtype=data.dtype)
        safe = np.where(keep, idx, 0)
        count = float(keep.sum())
    else:
        keep = None
        safe = idx
        count = float(n)

    shifted = flat - flat.max(axis=-1, keepdims=True)
    exps = np.exp(shifted)
    sumexp = exps.sum(axis=-1, keepdims=True)
    # per-position loss = logsumexp - target logit (== -log p[target])
    per = np.log(sumexp[:, 0]) - shifted[rows, safe]
    if keep is not None:
        per = per * keep.astype(data.dtype)
        out = np.asarray(per.sum() / count)      # mirrors unfused ``/``
    else:
        out = np.asarray(per.sum() * (1.0 / count))  # mirrors ``.mean()``
    if not (is_grad_enabled() and logits.requires_grad):
        return Tensor._wrap(out)

    def backward(g):
        gf = exps / sumexp
        gf[rows, safe] -= 1.0
        if keep is not None:
            gf *= keep[:, None]
        gf *= np.asarray(g) / count
        return (gf.reshape(data.shape),)

    return Tensor._node(out, (logits,), backward)


# -- affine --------------------------------------------------------------------


@prof.profiled("fused.linear")
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused affine transform ``x @ weight + bias`` as one graph node.

    Every Linear layer in every Transformer pays the matmul-node plus
    bias-add-node cost per call; fusing them halves the graph nodes of
    the projection-heavy MHA/FFN chains. ``x`` is ``(..., in)``,
    ``weight`` is ``(in, out)``, ``bias`` is ``(out,)`` or ``None``.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    bias = as_tensor(bias) if bias is not None else None
    if not fusion_enabled():
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out

    xd, wd = x.data, weight.data
    out = xd @ wd
    if bias is not None:
        out += bias.data
    needs = x.requires_grad or weight.requires_grad \
        or (bias is not None and bias.requires_grad)
    if not (is_grad_enabled() and needs):
        return Tensor._wrap(out)
    lead = tuple(range(out.ndim - 1))

    def backward(g):
        gx = g @ np.swapaxes(wd, -1, -2)
        gw = xd.reshape(-1, xd.shape[-1]).T @ g.reshape(-1, g.shape[-1])
        if bias is None:
            return (gx, gw)
        return (gx, gw, g.sum(axis=lead))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._node(out, parents, backward)


@prof.profiled("fused.ffn")
def feed_forward(x: Tensor, w1: Tensor, b1: Tensor, w2: Tensor, b2: Tensor,
                 dropout_mask: np.ndarray | None = None) -> Tensor:
    """Fused Transformer FFN: ``(gelu(x @ w1 + b1) * drop) @ w2 + b2``.

    The position-wise feed-forward chain — linear, exact GELU, inverted
    dropout, linear — as ONE graph node. ``dropout_mask`` is the
    keep/scale array (or ``None`` when dropout is inactive); passing it
    in keeps the RNG stream identical to the unfused composition.
    """
    x = as_tensor(x)
    if not fusion_enabled():
        hidden = gelu(linear(x, w1, b1))
        if dropout_mask is not None:
            hidden = hidden * Tensor._wrap(dropout_mask)
        return linear(hidden, w2, b2)

    w1, b1, w2, b2 = (as_tensor(t) for t in (w1, b1, w2, b2))
    xd = x.data
    out, pre, cdf, hidden = _gelu_ffn_forward(xd, w1.data, b1.data,
                                              w2.data, b2.data, dropout_mask)
    needs = any(t.requires_grad for t in (x, w1, b1, w2, b2))
    if not (is_grad_enabled() and needs):
        return Tensor._wrap(out)
    lead = tuple(range(out.ndim - 1))

    def backward(g):
        return _gelu_ffn_backward(g, xd, w1.data, w2.data, pre, cdf,
                                  hidden, dropout_mask, lead)

    return Tensor._node(out, (x, w1, b1, w2, b2), backward)


# -- contrastive loss ----------------------------------------------------------


@prof.profiled("fused.info_nce")
def info_nce(scores: Tensor, positive_mask: np.ndarray,
             candidate_mask: np.ndarray | None = None) -> Tensor:
    """Fused generalized InfoNCE (see :func:`repro.nn.ops.info_nce`).

    The paper's Eq. 5–11 objectives all reduce to this primitive, so it
    is the single hottest loss in every training step. The fused node
    mirrors the unfused composition's value bit-for-bit and backpropagates
    the closed form ``dS = r * (cand * softmax_cand - pos * softmax_pos)``
    in one step instead of the ~10-node masked-exp-sum-log chain.
    """
    scores = as_tensor(scores)
    if not fusion_enabled():
        return _ops.info_nce(scores, positive_mask, candidate_mask)

    positive_mask = np.asarray(positive_mask, dtype=bool)
    if candidate_mask is None:
        candidate_mask = np.ones_like(positive_mask)
    candidate_mask = np.asarray(candidate_mask, dtype=bool)
    valid_rows = positive_mask.any(axis=1)
    if not valid_rows.any():
        return Tensor(0.0, dtype=scores.data.dtype)
    dtype = scores.data.dtype
    count = float(valid_rows.sum())

    union = candidate_mask | positive_mask
    masked = np.where(union, scores.data, dtype.type(_NEG_INF))
    masked -= masked.max(axis=1, keepdims=True)
    exp = np.exp(masked)
    cand_f = candidate_mask.astype(dtype)
    pos_f = positive_mask.astype(dtype)
    denom = (exp * cand_f).sum(axis=1)
    numer = (exp * pos_f).sum(axis=1)
    # Rows without positives contribute zero loss; pad their log args to 1
    # so 0 * log(0) never yields a NaN (mirrors the unfused composition).
    pad = (~valid_rows).astype(dtype)
    denom += pad
    numer += pad
    losses = np.log(denom) - np.log(numer)
    losses *= valid_rows.astype(dtype)
    out = np.asarray(losses.sum() / count)
    if not (is_grad_enabled() and scores.requires_grad):
        return Tensor._wrap(out)

    def backward(g):
        rscale = valid_rows.astype(dtype) * (np.asarray(g) / count)
        gs = cand_f / denom[:, None]
        gs -= pos_f / numer[:, None]
        gs *= exp
        gs *= rscale[:, None]
        return (gs,)

    return Tensor._node(out, (scores,), backward)


# -- layer norm ----------------------------------------------------------------


@prof.profiled("fused.layer_norm")
def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               eps: float = 1e-5) -> Tensor:
    """Fused layer normalization over the last axis as one graph node.

    Computes ``(x - mean) / sqrt(var + eps) * gamma + beta`` with the
    statistics taken over the last axis, exactly mirroring the unfused
    mean/center/var/scale composition's operation order (bit-for-bit
    identical forward). The backward pass uses the closed form
    ``dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat))``.
    """
    x, gamma, beta = as_tensor(x), as_tensor(gamma), as_tensor(beta)
    if not fusion_enabled():
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * ((var + eps) ** -0.5)
        return normed * gamma + beta

    gd = gamma.data
    out, xhat, inv_std = _ln_forward(x.data, gd, beta.data, eps)
    if not (is_grad_enabled() and (x.requires_grad or gamma.requires_grad
                                   or beta.requires_grad)):
        return Tensor._wrap(out)
    lead = tuple(range(out.ndim - 1))

    def backward(g):
        return _ln_backward(g, xhat, inv_std, gd, lead)

    return Tensor._node(out, (x, gamma, beta), backward)
