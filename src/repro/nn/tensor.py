"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate of the whole reproduction: every
model (PMMRec, the baselines, the text/vision encoders) is expressed as a
graph of :class:`Tensor` operations, and every training objective is
optimized with gradients produced by :meth:`Tensor.backward`.

The engine is deliberately small and explicit:

* A :class:`Tensor` wraps an ``np.ndarray`` plus an optional gradient.
* Each differentiable operation records a backward closure and its parent
  tensors; ``backward()`` topologically sorts the graph and accumulates
  gradients.
* Broadcasting follows numpy semantics; gradients are un-broadcast by
  summing over the broadcast axes — *lazily*: backward closures return
  gradients in whatever (possibly broadcast) shape the math produced,
  and the reduction back to the parent's shape happens exactly once, when
  that parent's accumulated gradient is consumed. Multiple broadcast
  contributions to one tensor are therefore summed at full size and
  reduced a single time instead of being materialised per node.
* Tensors carry either ``float32`` or ``float64`` payloads. The ambient
  default for freshly-created tensors is controlled by
  :func:`default_dtype` / :func:`set_default_dtype`; existing float arrays
  keep their dtype so mixed-precision graphs are possible but never
  accidental.
* Under :func:`no_grad` (or when no input requires grad) operations take a
  fast path that skips closure and parent bookkeeping entirely instead of
  building graph state and discarding it.

Gradient correctness for every primitive is property-tested against central
finite differences in ``tests/nn/test_autograd.py`` and
``tests/nn/test_autograd_dtypes.py``.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled", "as_tensor",
           "default_dtype", "get_default_dtype", "set_default_dtype",
           "scatter_add_rows"]


class _GradStack(threading.local):
    """Per-thread ``no_grad`` nesting (list-shaped: append/pop/[-1]).

    The gradient gate must be thread-local: online serving scores under
    ``no_grad`` on request threads while the streaming fine-tune worker
    builds training graphs concurrently (``repro.stream``) — with a
    shared stack, any request thread inside its inference block would
    silently disable graph construction for every other thread's ops.
    Each thread starts grad-enabled.
    """

    def __init__(self):
        self._stack = [True]

    def append(self, value: bool) -> None:
        self._stack.append(value)

    def pop(self) -> bool:
        return self._stack.pop()

    def __getitem__(self, index: int) -> bool:
        return self._stack[index]


_GRAD = _GradStack()

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))
_DEFAULT_DTYPE = [np.dtype(np.float64)]


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    _GRAD.append(False)
    try:
        yield
    finally:
        _GRAD.pop()


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD[-1]


@contextlib.contextmanager
def default_dtype(dtype):
    """Context manager scoping the dtype of freshly-created tensors.

    ``with default_dtype(np.float32): ...`` makes every tensor or parameter
    built from non-float data (lists, ints, bools, python scalars) inside
    the block a ``float32`` tensor. Float arrays keep their own dtype.
    """
    resolved = np.dtype(dtype)
    if resolved not in _FLOAT_DTYPES:
        raise TypeError(f"default dtype must be float32 or float64, got {resolved}")
    _DEFAULT_DTYPE.append(resolved)
    try:
        yield
    finally:
        _DEFAULT_DTYPE.pop()


def get_default_dtype() -> np.dtype:
    """The dtype currently used for tensors built from non-float data."""
    return _DEFAULT_DTYPE[-1]


def set_default_dtype(dtype) -> None:
    """Set the process-wide base default dtype.

    Writes the bottom of the dtype stack, so any active
    :func:`default_dtype` context keeps overriding until it exits —
    after which the new base takes effect (instead of being silently
    discarded by the context's cleanup).
    """
    resolved = np.dtype(dtype)
    if resolved not in _FLOAT_DTYPES:
        raise TypeError(f"default dtype must be float32 or float64, got {resolved}")
    _DEFAULT_DTYPE[0] = resolved


def scatter_add_rows(out: np.ndarray, indices: np.ndarray,
                     rows: np.ndarray) -> np.ndarray:
    """Accumulate ``rows`` into ``out[indices]`` without ``np.add.at``.

    ``np.add.at`` processes one element at a time through ufunc buffering,
    which makes it the dominant cost of embedding backward passes (where
    a batch repeats a small set of item ids many times). Sorting the
    indices instead groups duplicate rows into contiguous runs, sums each
    run with one vectorized ``np.add.reduceat``, and touches each unique
    destination row exactly once.

    ``out`` is modified in place (and returned); ``indices`` is a 1-D
    integer array with one entry per row of ``rows``. Semantics match
    ``np.add.at(out, indices, rows)`` — repeated and negative indices
    included — up to floating-point summation order within a run.
    """
    indices = np.asarray(indices)
    if indices.size == 0:
        return out
    if indices.size == 1:
        out[indices[0]] += rows[0]
        return out
    if indices.min() < 0:
        # Normalize so -i and n-i sort into the same run; otherwise the
        # final fancy += would see the row twice and drop one update.
        indices = np.where(indices < 0, indices + out.shape[0], indices)
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    starts = np.flatnonzero(np.concatenate(
        ([True], sorted_idx[1:] != sorted_idx[:-1])))
    sums = np.add.reduceat(rows[order], starts, axis=0)
    out[sorted_idx[starts]] += sums
    return out


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes.

    Backward closures no longer call this per node; gradients travel in
    broadcast shape and :meth:`Tensor.backward` applies the reduction
    lazily when a node's accumulated gradient is popped for use.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload. Float32/float64 ndarrays are taken as-is (no
        copy, dtype preserved); everything else — lists, scalars, int and
        bool arrays — is converted to the ambient default dtype (see
        :func:`default_dtype`).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    dtype:
        Explicit dtype override; forces a cast regardless of the payload.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        if dtype is not None:
            arr = np.asarray(data, dtype=dtype)
        elif isinstance(data, np.ndarray) and data.dtype in _FLOAT_DTYPES:
            arr = data
        else:
            # Lists, scalars, int/bool arrays: adopt the ambient default.
            arr = np.asarray(data, dtype=_DEFAULT_DTYPE[-1])
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD[-1]
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # -- construction helpers -------------------------------------------------

    @classmethod
    def _wrap(cls, data: np.ndarray) -> "Tensor":
        """Allocation-lean constructor for op results off the graph.

        Skips all dtype coercion and grad bookkeeping — ``data`` must
        already be a float ndarray produced by a numpy op.
        """
        out = cls.__new__(cls)
        out.data = data
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        return out

    @classmethod
    def _node(cls, data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], tuple]) -> "Tensor":
        """Create a graph node; the caller has already checked grad is needed."""
        out = cls._wrap(data)
        out.requires_grad = True
        out._parents = tuple(parents)
        out._backward = backward
        return out

    # -- basic protocol --------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the graph."""
        return Tensor._wrap(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast; the backward pass casts grads back."""
        dtype = np.dtype(dtype)
        if dtype == self.data.dtype:
            return self
        out_data = self.data.astype(dtype)
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        a = self
        return Tensor._node(out_data, (a,),
                            lambda g: (g.astype(a.data.dtype),))

    def to(self, dtype) -> "Tensor":
        """Alias of :meth:`astype` (torch-style spelling)."""
        return self.astype(dtype)

    # -- backward --------------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (only valid for scalars is
            the usual convention, but any shape matching ``self`` works).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones(self.data.shape, dtype=self.data.dtype)
            seed_owned = True
        else:
            supplied = np.asarray(grad)
            grad = supplied.astype(self.data.dtype, copy=False)
            # Only treat the seed as ours when the cast actually copied.
            seed_owned = grad is not supplied

        # Topological order over the subgraph reachable from self.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        # ``owned`` tracks buffers this pass allocated itself: those may be
        # accumulated into with in-place ``+=`` instead of a fresh add.
        grads: dict[int, np.ndarray] = {id(self): grad}
        owned: set[int] = {id(self)} if seed_owned else set()
        for node in reversed(order):
            key = id(node)
            node_grad = grads.pop(key, None)
            if node_grad is None:
                continue
            node_owned = key in owned
            owned.discard(key)
            if node_grad.shape != node.data.shape:
                # Lazy unbroadcast: contributions accumulated in broadcast
                # shape are reduced exactly once, here. The reduction
                # allocates, so the result is ours to mutate.
                node_grad = _unbroadcast(node_grad, node.data.shape)
                node_owned = True
            if node._backward is None:
                # Leaf: accumulate into .grad, keeping the leaf's dtype.
                if node.grad is None:
                    if node_owned and node_grad.dtype == node.data.dtype:
                        node.grad = node_grad
                    else:
                        node.grad = node_grad.astype(node.data.dtype)
                else:
                    node.grad += node_grad
                continue
            node._backward_dispatch(node_grad, grads, owned)

    def _backward_dispatch(self, node_grad: np.ndarray,
                           grads: dict[int, np.ndarray],
                           owned: set[int]) -> None:
        """Run the backward closure, routing parent grads into ``grads``.

        Parent gradients may arrive in broadcast shape (larger than the
        parent); they are accumulated as-is and reduced lazily when the
        parent's slot is popped in :meth:`backward`.
        """
        parent_grads = self._backward(node_grad)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            key = id(parent)
            current = grads.get(key)
            if current is None:
                grads[key] = pgrad
            elif key in owned and current.shape == pgrad.shape:
                current += pgrad
            else:
                if current.shape != pgrad.shape:
                    # Contributions arrived at different broadcast
                    # shapes; adding them as-is would re-broadcast the
                    # smaller one and over-count it under the final
                    # reduction. Reduce both to the parent's shape now.
                    current = _unbroadcast(current, parent.data.shape)
                    pgrad = _unbroadcast(pgrad, parent.data.shape)
                # First contribution may alias op state (or the upstream
                # grad itself); allocate a fresh accumulation buffer once.
                grads[key] = current + pgrad
                owned.add(key)

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) \
            else Tensor(other, dtype=self.data.dtype)
        out_data = self.data + other.data
        if not (_GRAD[-1] and (self.requires_grad or other.requires_grad)):
            return Tensor._wrap(out_data)
        a, b = self, other
        # Lazy unbroadcast: hand the upstream gradient straight to both
        # parents; any reduction happens when their slots are consumed.
        return Tensor._node(out_data, (a, b), lambda g: (g, g))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(-self.data)
        return Tensor._node(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) \
            else Tensor(other, dtype=self.data.dtype)
        out_data = self.data - other.data
        if not (_GRAD[-1] and (self.requires_grad or other.requires_grad)):
            return Tensor._wrap(out_data)
        a, b = self, other
        return Tensor._node(out_data, (a, b), lambda g: (g, -g))

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other, dtype=self.data.dtype) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) \
            else Tensor(other, dtype=self.data.dtype)
        out_data = self.data * other.data
        if not (_GRAD[-1] and (self.requires_grad or other.requires_grad)):
            return Tensor._wrap(out_data)
        a, b = self, other
        return Tensor._node(out_data, (a, b),
                            lambda g: (g * b.data, g * a.data))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) \
            else Tensor(other, dtype=self.data.dtype)
        out_data = self.data / other.data
        if not (_GRAD[-1] and (self.requires_grad or other.requires_grad)):
            return Tensor._wrap(out_data)
        a, b = self, other

        def backward(g):
            return (g / b.data, -g * a.data / (b.data ** 2))

        return Tensor._node(out_data, (a, b), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other, dtype=self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        exponent = float(exponent)
        out_data = self.data ** exponent
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        a = self

        def backward(g):
            return (g * exponent * a.data ** (exponent - 1),)

        return Tensor._node(out_data, (a,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) \
            else Tensor(other, dtype=self.data.dtype)
        out_data = self.data @ other.data
        if not (_GRAD[-1] and (self.requires_grad or other.requires_grad)):
            return Tensor._wrap(out_data)
        a, b = self, other

        def backward(g):
            if b.data.ndim == 1:
                # (…, n) @ (n,) -> (…,)
                ga = np.expand_dims(g, -1) * b.data
                gb = np.tensordot(g, a.data, axes=(range(g.ndim), range(g.ndim)))
            elif a.data.ndim == 1:
                # (n,) @ (n, m) -> (m,)
                ga = g @ np.swapaxes(b.data, -1, -2)
                gb = np.outer(a.data, g)
            else:
                # Batched case: grads may carry broadcast batch axes; the
                # lazy unbroadcast at accumulation time reduces them.
                ga = g @ np.swapaxes(b.data, -1, -2)
                gb = np.swapaxes(a.data, -1, -2) @ g
            return (ga, gb)

        return Tensor._node(out_data, (a, b), backward)

    # -- elementwise functions ---------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        return Tensor._node(out_data, (self,), lambda g: (g * out_data,))

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        a = self
        return Tensor._node(out_data, (a,), lambda g: (g / a.data,))

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        return Tensor._node(out_data, (self,), lambda g: (g * 0.5 / out_data,))

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        return Tensor._node(out_data, (self,),
                            lambda g: (g * (1.0 - out_data ** 2),))

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        return Tensor._node(out_data, (self,),
                            lambda g: (g * out_data * (1.0 - out_data),))

    def relu(self) -> "Tensor":
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(np.maximum(self.data, 0))
        mask = self.data > 0
        return Tensor._node(self.data * mask, (self,), lambda g: (g * mask,))

    def abs(self) -> "Tensor":
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(np.abs(self.data))
        a = self
        sign = np.sign(a.data)
        return Tensor._node(np.abs(a.data), (a,), lambda g: (g * sign,))

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        a = self
        mask = (a.data >= low) & (a.data <= high)
        return Tensor._node(out_data, (a,), lambda g: (g * mask,))

    # -- reductions ----------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(np.asarray(out_data))
        a = self

        def backward(g):
            # Returning read-only broadcast views is safe: the engine only
            # mutates accumulation buffers it allocated itself.
            g = np.asarray(g)
            if axis is None:
                return (np.broadcast_to(g, a.shape),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                for ax in sorted(ax % a.ndim for ax in axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, a.shape),)

        return Tensor._node(np.asarray(out_data), (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = np.asarray(self.data.max(axis=axis, keepdims=keepdims))
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        a = self

        def backward(g):
            g = np.asarray(g)
            if axis is None:
                expanded = np.broadcast_to(out_data, a.shape)
                gexp = np.broadcast_to(g, a.shape)
            else:
                ref = a.data.max(axis=axis, keepdims=True)
                expanded = np.broadcast_to(ref, a.shape)
                gk = g if keepdims else np.expand_dims(g, axis)
                gexp = np.broadcast_to(gk, a.shape)
            mask = (a.data == expanded)
            # Split gradient across ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            return (gexp * mask / counts,)

        return Tensor._node(out_data, (a,), backward)

    # -- shape manipulation ----------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        a = self
        return Tensor._node(out_data, (a,),
                            lambda g: (g.reshape(a.shape),))

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        inverse = tuple(np.argsort(axes))
        return Tensor._node(out_data, (self,),
                            lambda g: (g.transpose(inverse),))

    def swapaxes(self, ax1: int, ax2: int) -> "Tensor":
        out_data = self.data.swapaxes(ax1, ax2)
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        return Tensor._node(out_data, (self,),
                            lambda g: (g.swapaxes(ax1, ax2),))

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        if not (_GRAD[-1] and self.requires_grad):
            return Tensor._wrap(out_data)
        a = self
        # Integer-array gathers along axis 0 (the embedding-lookup shape)
        # take the sort+reduceat scatter; anything fancier falls back to
        # the general (slow, element-buffered) np.add.at.
        row_key = None
        if not isinstance(key, (tuple, Tensor)):
            candidate = np.asarray(key)
            if candidate.dtype.kind in "iu" and candidate.ndim >= 1 \
                    and a.data.ndim >= 1:
                row_key = candidate.reshape(-1)

        def backward(g):
            full = np.zeros_like(a.data)
            if row_key is not None:
                scatter_add_rows(full.reshape(full.shape[0], -1), row_key,
                                 np.asarray(g).reshape(row_key.size, -1))
            else:
                np.add.at(full, key, g)
            return (full,)

        return Tensor._node(out_data, (a,), backward)

    # -- convenience -------------------------------------------------------------------

    def l2_normalize(self, axis: int = -1, eps: float = 1e-12) -> "Tensor":
        """Return the tensor scaled to unit L2 norm along ``axis``."""
        norm = (self * self).sum(axis=axis, keepdims=True)
        return self * ((norm + eps) ** -0.5)


class Parameter(Tensor):
    """A :class:`Tensor` that is registered by :class:`repro.nn.Module`.

    Unlike plain tensors, parameters always adopt the ambient default dtype
    (or the explicit ``dtype``) even when built from a float array — module
    state is canonical and should not silently keep an initializer's dtype.
    """

    __slots__ = ()

    def __init__(self, data, dtype=None):
        super().__init__(data, requires_grad=True,
                         dtype=np.dtype(dtype) if dtype is not None
                         else _DEFAULT_DTYPE[-1])


def as_tensor(value, dtype=None) -> Tensor:
    """Coerce ``value`` (Tensor, ndarray or scalar) to a :class:`Tensor`.

    Tensors pass through unchanged (``dtype`` is ignored for them — use
    :meth:`Tensor.astype` for a differentiable cast).
    """
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)


def _coerce_peers(values) -> list[Tensor]:
    """Coerce a mixed list to tensors, non-Tensor entries adopting the
    dtype of the first Tensor present (so one list/scalar operand cannot
    upcast a float32 graph)."""
    values = list(values)
    ref = next((v.data.dtype for v in values if isinstance(v, Tensor)), None)
    return [v if isinstance(v, Tensor) else Tensor(v, dtype=ref)
            for v in values]


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = _coerce_peers(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)
    if not (_GRAD[-1] and any(t.requires_grad for t in tensors)):
        return Tensor._wrap(out_data)

    def backward(g):
        pieces = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._node(out_data, tensors, backward)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis (differentiable)."""
    tensors = _coerce_peers(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not (_GRAD[-1] and any(t.requires_grad for t in tensors)):
        return Tensor._wrap(out_data)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        slicer = [slice(None)] * g.ndim
        outs = []
        for i in range(len(tensors)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            outs.append(g[tuple(slicer)])
        return tuple(outs)

    return Tensor._node(out_data, tensors, backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Differentiable ``np.where`` with a constant condition mask."""
    a, b = _coerce_peers((a, b))
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)
    if not (_GRAD[-1] and (a.requires_grad or b.requires_grad)):
        return Tensor._wrap(out_data)

    def backward(g):
        return (g * cond, g * (~cond))

    return Tensor._node(out_data, (a, b), backward)
