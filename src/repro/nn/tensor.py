"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate of the whole reproduction: every
model (PMMRec, the baselines, the text/vision encoders) is expressed as a
graph of :class:`Tensor` operations, and every training objective is
optimized with gradients produced by :meth:`Tensor.backward`.

The engine is deliberately small and explicit:

* A :class:`Tensor` wraps an ``np.ndarray`` plus an optional gradient.
* Each differentiable operation records a backward closure and its parent
  tensors; ``backward()`` topologically sorts the graph and accumulates
  gradients.
* Broadcasting follows numpy semantics; gradients are un-broadcast by
  summing over the broadcast axes.

Gradient correctness for every primitive is property-tested against central
finite differences in ``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` ndarray unless it
        already is a float ndarray.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data, dtype=np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a graph node from an op result and its backward closure."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # -- basic protocol --------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # -- backward --------------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (only valid for scalars is
            the usual convention, but any shape matching ``self`` works).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        # Topological order over the subgraph reachable from self.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            node._backward_dispatch(node_grad, grads)

    def _backward_dispatch(self, node_grad: np.ndarray,
                           grads: dict[int, np.ndarray]) -> None:
        """Run the backward closure, routing parent grads into ``grads``."""
        parent_grads = self._backward(node_grad)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data
        a, b = self, other

        def backward(g):
            return (_unbroadcast(g, a.shape), _unbroadcast(g, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self
        return Tensor._make(-self.data, (a,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other
        out_data = a.data * b.data

        def backward(g):
            return (_unbroadcast(g * b.data, a.shape),
                    _unbroadcast(g * a.data, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other
        out_data = a.data / b.data

        def backward(g):
            ga = _unbroadcast(g / b.data, a.shape)
            gb = _unbroadcast(-g * a.data / (b.data ** 2), b.shape)
            return (ga, gb)

        return Tensor._make(out_data, (a, b), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        a = self
        out_data = a.data ** exponent

        def backward(g):
            return (g * exponent * a.data ** (exponent - 1),)

        return Tensor._make(out_data, (a,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other
        out_data = a.data @ b.data

        def backward(g):
            if b.data.ndim == 1:
                # (…, n) @ (n,) -> (…,)
                ga = np.expand_dims(g, -1) * b.data
                gb = np.tensordot(g, a.data, axes=(range(g.ndim), range(g.ndim)))
            elif a.data.ndim == 1:
                # (n,) @ (n, m) -> (m,)
                ga = g @ np.swapaxes(b.data, -1, -2)
                gb = np.outer(a.data, g)
            else:
                ga = g @ np.swapaxes(b.data, -1, -2)
                gb = np.swapaxes(a.data, -1, -2) @ g
                ga = _unbroadcast(ga, a.shape)
                gb = _unbroadcast(gb, b.shape)
            return (ga, gb)

        return Tensor._make(out_data, (a, b), backward)

    # -- elementwise functions ---------------------------------------------------

    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)
        return Tensor._make(out_data, (a,), lambda g: (g * out_data,))

    def log(self) -> "Tensor":
        a = self
        return Tensor._make(np.log(a.data), (a,), lambda g: (g / a.data,))

    def sqrt(self) -> "Tensor":
        a = self
        out_data = np.sqrt(a.data)
        return Tensor._make(out_data, (a,), lambda g: (g * 0.5 / out_data,))

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)
        return Tensor._make(out_data, (a,), lambda g: (g * (1.0 - out_data ** 2),))

    def sigmoid(self) -> "Tensor":
        a = self
        out_data = 1.0 / (1.0 + np.exp(-a.data))
        return Tensor._make(out_data, (a,),
                            lambda g: (g * out_data * (1.0 - out_data),))

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0
        return Tensor._make(a.data * mask, (a,), lambda g: (g * mask,))

    def abs(self) -> "Tensor":
        a = self
        sign = np.sign(a.data)
        return Tensor._make(np.abs(a.data), (a,), lambda g: (g * sign,))

    def clip(self, low: float, high: float) -> "Tensor":
        a = self
        mask = (a.data >= low) & (a.data <= high)
        return Tensor._make(np.clip(a.data, low, high), (a,),
                            lambda g: (g * mask,))

    # -- reductions ----------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            g = np.asarray(g)
            if axis is None:
                return (np.broadcast_to(g, a.shape).copy(),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                for ax in sorted(ax % a.ndim for ax in axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, a.shape).copy(),)

        return Tensor._make(out_data, (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            g = np.asarray(g)
            if axis is None:
                expanded = np.broadcast_to(out_data, a.shape)
                gexp = np.broadcast_to(g, a.shape)
            else:
                ref = a.data.max(axis=axis, keepdims=True)
                expanded = np.broadcast_to(ref, a.shape)
                gk = g if keepdims else np.expand_dims(g, axis)
                gexp = np.broadcast_to(gk, a.shape)
            mask = (a.data == expanded)
            # Split gradient across ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            return (gexp * mask / counts,)

        return Tensor._make(out_data, (a,), backward)

    # -- shape manipulation ----------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        out_data = a.data.reshape(shape)
        return Tensor._make(out_data, (a,),
                            lambda g: (g.reshape(a.shape),))

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        a = self
        if not axes:
            axes = tuple(reversed(range(a.ndim)))
        inverse = tuple(np.argsort(axes))
        out_data = a.data.transpose(axes)
        return Tensor._make(out_data, (a,),
                            lambda g: (g.transpose(inverse),))

    def swapaxes(self, ax1: int, ax2: int) -> "Tensor":
        a = self
        out_data = a.data.swapaxes(ax1, ax2)
        return Tensor._make(out_data, (a,), lambda g: (g.swapaxes(ax1, ax2),))

    def __getitem__(self, key) -> "Tensor":
        a = self
        out_data = a.data[key]

        def backward(g):
            full = np.zeros_like(a.data)
            np.add.at(full, key, g)
            return (full,)

        return Tensor._make(out_data, (a,), backward)

    # -- convenience -------------------------------------------------------------------

    def l2_normalize(self, axis: int = -1, eps: float = 1e-12) -> "Tensor":
        """Return the tensor scaled to unit L2 norm along ``axis``."""
        norm = (self * self).sum(axis=axis, keepdims=True)
        return self * ((norm + eps) ** -0.5)


class Parameter(Tensor):
    """A :class:`Tensor` that is registered by :class:`repro.nn.Module`."""

    __slots__ = ()

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` (Tensor, ndarray or scalar) to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        pieces = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(out_data, tensors, backward)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        slicer = [slice(None)] * g.ndim
        outs = []
        for i in range(len(tensors)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            outs.append(g[tuple(slicer)])
        return tuple(outs)

    return Tensor._make(out_data, tensors, backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Differentiable ``np.where`` with a constant condition mask."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(g):
        ga = _unbroadcast(g * cond, a.shape)
        gb = _unbroadcast(g * (~cond), b.shape)
        return (ga, gb)

    return Tensor._make(out_data, (a, b), backward)
