"""Recurrent layers (GRU) used by the GRU4Rec baseline."""

from __future__ import annotations

import numpy as np

from . import init
from .modules import Module
from .tensor import Parameter, Tensor, concat

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single Gated Recurrent Unit step.

    Implements the standard update/reset/candidate gating:
    ``z = sigmoid(x Wz + h Uz)``, ``r = sigmoid(x Wr + h Ur)``,
    ``n = tanh(x Wn + (r * h) Un)``, ``h' = (1 - z) * n + z * h``.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = init.default_rng(rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_input = Parameter(init.xavier_uniform((input_dim, 3 * hidden_dim), rng))
        self.w_hidden = Parameter(init.xavier_uniform((hidden_dim, 3 * hidden_dim), rng))
        self.bias = Parameter(np.zeros(3 * hidden_dim))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        d = self.hidden_dim
        gates_x = x @ self.w_input + self.bias
        gates_h = h @ self.w_hidden
        z = (gates_x[:, 0:d] + gates_h[:, 0:d]).sigmoid()
        r = (gates_x[:, d:2 * d] + gates_h[:, d:2 * d]).sigmoid()
        n = (gates_x[:, 2 * d:] + r * gates_h[:, 2 * d:]).tanh()
        return (1.0 - z) * n + z * h


class GRU(Module):
    """Unrolled GRU over a ``(batch, length, input_dim)`` sequence.

    Returns the hidden state at every step, ``(batch, length, hidden_dim)``,
    which GRU4Rec scores against item representations position-wise.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        h = Tensor._wrap(np.zeros((batch, self.hidden_dim),
                                  dtype=x.data.dtype))
        outputs = []
        for t in range(length):
            h = self.cell(x[:, t, :], h)
            outputs.append(h.reshape(batch, 1, self.hidden_dim))
        return concat(outputs, axis=1)
