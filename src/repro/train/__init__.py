"""``repro.train`` — model-agnostic training loop with early stopping."""

from .trainer import TrainConfig, Trainer, TrainResult

__all__ = ["TrainConfig", "Trainer", "TrainResult"]
