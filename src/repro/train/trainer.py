"""Model-agnostic training loop with early stopping.

Works with any model exposing the shared protocol::

    training_loss(dataset, item_ids, mask, pretraining=bool) -> (Tensor, dict)
    score_histories(dataset, histories, catalog=None) -> np.ndarray
    encode_catalog(dataset) -> np.ndarray            # optional, for speed

which PMMRec and every baseline implement. The trainer mirrors the paper's
recipe: AdamW, early stopping on validation HR@10, multi-task objective
during pre-training and DAP-only during fine-tuning. Per-epoch validation
metrics are recorded so Figure 3's convergence curves fall out for free.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..obs import prof
from ..data.batching import batch_iterator
from ..data.catalog import SeqDataset
from ..eval.evaluator import evaluate_model

__all__ = ["TrainConfig", "TrainResult", "Trainer"]


@dataclass
class TrainConfig:
    """Optimization hyper-parameters."""

    epochs: int = 40
    batch_size: int = 24
    lr: float = 2e-3
    weight_decay: float = 0.01
    clip_norm: float = 5.0
    patience: int = 4           # early-stop after this many non-improvements
    eval_every: int = 1         # validate every N epochs
    max_seq_len: int = 30
    metric: str = "hr@10"       # early-stopping criterion
    warmup_frac: float = 0.0    # >0 enables a warmup+cosine LR schedule
    dtype: str | None = None    # "float32"/"float64": cast the model up front
    fused: bool | None = None   # force fused kernels on/off; None = REPRO_FUSED
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainResult:
    """Outcome of a training run."""

    best_metric: float
    best_epoch: int
    epochs_run: int
    curve: list[tuple[int, float]] = field(default_factory=list)
    loss_history: list[float] = field(default_factory=list)


class Trainer:
    """Train a recommender on one dataset with validation early stopping."""

    def __init__(self, model, dataset: SeqDataset,
                 config: TrainConfig | None = None, pretraining: bool = True):
        self.model = model
        self.dataset = dataset
        self.config = config or TrainConfig()
        self.pretraining = pretraining
        self._rng = np.random.default_rng(self.config.seed)
        if self.config.dtype is not None:
            # Cast before the optimizer snapshots its moment buffers so the
            # whole run (params, grads, optimizer state) shares one dtype.
            model.to_dtype(self.config.dtype)
        params = [p for p in model.parameters() if p.requires_grad]
        self.optimizer = nn.AdamW(params, lr=self.config.lr,
                                  weight_decay=self.config.weight_decay)
        self.schedule = None
        if self.config.warmup_frac > 0.0:
            steps_per_epoch = max(
                (len(dataset.split.train) + self.config.batch_size - 1)
                // self.config.batch_size, 1)
            total = steps_per_epoch * self.config.epochs
            self.schedule = nn.WarmupCosineSchedule(
                self.optimizer,
                warmup_steps=int(self.config.warmup_frac * total),
                total_steps=total)

    def _fusion_scope(self):
        """Fused-kernel override for this run (no-op when ``fused`` unset).

        ``TrainConfig(fused=...)`` pins the training loop to the fused or
        unfused autograd path regardless of the ambient ``REPRO_FUSED``
        setting — the escape hatch for A/B-ing a training run against the
        multi-node composition.
        """
        if self.config.fused is None:
            return contextlib.nullcontext()
        return nn.use_fused(self.config.fused)

    def train_step(self, item_ids: np.ndarray, mask: np.ndarray) -> float:
        """One optimizer step on an already-padded batch; returns the loss.

        The incremental entry point the streaming subsystem drives: the
        background fine-tune worker feeds replayed interaction batches
        through this method between hot swaps, so online updates use the
        exact optimizer/clipping/schedule path as offline epochs. The
        model is flipped to train mode only when needed, so steady
        stream-of-steps callers never pay the recursive mode walk.
        """
        cfg = self.config
        if not getattr(self.model, "training", True):
            self.model.train()
        with self._fusion_scope():
            self.optimizer.zero_grad()
            with prof.section("train.forward"):
                loss, _ = self.model.training_loss(
                    self.dataset, item_ids, mask,
                    pretraining=self.pretraining)
            with prof.section("train.backward"):
                loss.backward()
            with prof.section("train.clip"):
                nn.clip_grad_norm(self.optimizer.parameters, cfg.clip_norm)
            with prof.section("train.optimizer_step"):
                self.optimizer.step()
            if self.schedule is not None:
                self.schedule.step()
        return float(loss.data)

    def _run_epoch(self) -> float:
        cfg = self.config
        total, batches = 0.0, 0
        self.model.train()
        for batch in batch_iterator(self.dataset.split.train,
                                    cfg.batch_size, self._rng,
                                    max_len=cfg.max_seq_len):
            total += self.train_step(batch.item_ids, batch.mask)
            batches += 1
        return total / max(batches, 1)

    def validate(self) -> dict[str, float]:
        """Metrics on the validation split (ks limited to 10 for speed)."""
        with self._fusion_scope():
            return evaluate_model(self.model, self.dataset,
                                  self.dataset.split.valid, ks=(10,))

    def fit(self) -> TrainResult:
        """Train until ``epochs`` or early stopping; restore the best state."""
        cfg = self.config
        best_metric, best_epoch = -1.0, 0
        best_state = self.model.state_dict()
        curve: list[tuple[int, float]] = []
        losses: list[float] = []
        bad_evals = 0
        epoch = 0
        for epoch in range(1, cfg.epochs + 1):
            losses.append(self._run_epoch())
            if epoch % cfg.eval_every != 0:
                continue
            metric = self.validate()[cfg.metric]
            curve.append((epoch, metric))
            if cfg.verbose:
                print(f"[{self.dataset.name}] epoch {epoch:3d} "
                      f"loss {losses[-1]:.4f} {cfg.metric} {metric:.4f}")
            if metric > best_metric:
                best_metric, best_epoch = metric, epoch
                best_state = self.model.state_dict()
                bad_evals = 0
            else:
                bad_evals += 1
                if bad_evals >= cfg.patience:
                    break
        self.model.load_state_dict(best_state)
        return TrainResult(best_metric=best_metric, best_epoch=best_epoch,
                           epochs_run=epoch, curve=curve,
                           loss_history=losses)
