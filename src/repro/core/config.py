"""Configuration of the PMMRec model and its training objectives."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PMMRecConfig", "ALIGNMENT_CHOICES", "MODALITY_CHOICES"]

#: Cross-modal alignment objective variants (Sec. III-C + Table VIII):
#: ``nicl``  — full next-item enhanced contrastive learning (Eq. 8),
#: ``icl``   — intra-modality negatives, no next-item positives (Eq. 7),
#: ``vcl``   — vanilla inter-modality contrastive only (Eq. 6),
#: ``ncl``   — next-item positives without intra-modality negatives,
#: ``none``  — alignment disabled (the "w/o NICL" ablation row).
ALIGNMENT_CHOICES = ("nicl", "icl", "vcl", "ncl", "none")

#: Which item features feed the user encoder (Sec. III-E):
#: ``multi`` — fused text+vision (default), ``text`` / ``vision`` — the
#: single-modality deployments (PMMRec-T / PMMRec-V).
MODALITY_CHOICES = ("multi", "text", "vision")


@dataclass
class PMMRecConfig:
    """All hyper-parameters of PMMRec.

    Defaults follow the paper's architecture scaled down for the numpy
    substrate (see DESIGN.md §5); the loss toggles exist to express every
    ablation row of Table VIII.
    """

    dim: int = 32
    # Item encoders (stand-ins for RoBERTa / CLIP-ViT).
    encoder_blocks: int = 2
    encoder_heads: int = 4
    finetune_top_blocks: int = 2    # paper: tune only top-2 encoder blocks
    # Fusion module.
    fusion_blocks: int = 1
    # User encoder (SASRec-equivalent Transformer, Eq. 4).
    user_blocks: int = 2
    user_heads: int = 4
    max_seq_len: int = 32
    dropout: float = 0.1
    # Objectives.
    modality: str = "multi"
    alignment: str = "nicl"
    use_nid: bool = True
    use_rcl: bool = True
    temperature: float = 0.2        # contrastive temperature (impl. choice)
    nid_shuffle_frac: float = 0.15  # Sec. III-D1
    nid_replace_frac: float = 0.05
    # Loss mixing. Eq. 12 sums with unit weights at the paper's scale; at
    # this reproduction's scale the auxiliary objectives overpower DAP
    # when unweighted, so defaults down-weight them (a validated
    # implementation choice: 0.5/0.3/0.3 beats both 1/1/1 and DAP-only on
    # held-out data — see EXPERIMENTS.md).
    alignment_weight: float = 0.5
    nid_weight: float = 0.3
    rcl_weight: float = 0.3
    seed: int = 0

    def __post_init__(self):
        if self.alignment not in ALIGNMENT_CHOICES:
            raise ValueError(f"alignment must be one of {ALIGNMENT_CHOICES}, "
                             f"got {self.alignment!r}")
        if self.modality not in MODALITY_CHOICES:
            raise ValueError(f"modality must be one of {MODALITY_CHOICES}, "
                             f"got {self.modality!r}")
        if not 0.0 <= self.nid_shuffle_frac <= 1.0:
            raise ValueError("nid_shuffle_frac must be in [0, 1]")
        if not 0.0 <= self.nid_replace_frac <= 1.0:
            raise ValueError("nid_replace_frac must be in [0, 1]")
        if self.temperature <= 0.0:
            raise ValueError("temperature must be positive")
