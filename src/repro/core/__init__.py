"""``repro.core`` — the PMMRec model, objectives and transfer machinery."""

from .config import ALIGNMENT_CHOICES, MODALITY_CHOICES, PMMRecConfig
from .corruption import (LABEL_REPLACED, LABEL_SHUFFLED, LABEL_UNCHANGED,
                         CorruptionResult, corrupt_batch)
from .losses import (alignment_loss, batch_structure, dap_loss,
                     masked_mean_pool, nid_loss, rcl_loss)
from .model import PMMREC_VARIANTS, ItemEncodings, PMMRec, make_pmmrec
from .transfer import (TRANSFER_SETTINGS, build_target_model,
                       transfer_components, transferred_model)
from .user_encoder import UserEncoder

__all__ = [
    "PMMRec", "PMMRecConfig", "ItemEncodings", "UserEncoder",
    "PMMREC_VARIANTS", "make_pmmrec",
    "ALIGNMENT_CHOICES", "MODALITY_CHOICES",
    "corrupt_batch", "CorruptionResult",
    "LABEL_UNCHANGED", "LABEL_SHUFFLED", "LABEL_REPLACED",
    "batch_structure", "dap_loss", "alignment_loss", "nid_loss", "rcl_loss",
    "masked_mean_pool",
    "TRANSFER_SETTINGS", "transfer_components", "build_target_model",
    "transferred_model",
]
