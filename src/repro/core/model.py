"""The PMMRec model: item encoders + fusion + user encoder (Fig. 2a).

The model is deliberately *loosely coupled* (paper Sec. III-E): the text
encoder, vision encoder, fusion block and user encoder are independent
sub-modules so any subset can be transferred to a target platform. The
``modality`` config switch selects which item features reach the user
encoder — fused (default), text-only (PMMRec-T) or vision-only
(PMMRec-V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..data.catalog import SeqDataset, get_world
from ..fusion import FusionConfig, MergeAttentionFusion
from ..nn.ops import take_rows
from ..nn.tensor import Tensor
from ..text import pretrained_text_encoder
from ..vision import pretrained_vision_encoder
from .config import PMMRecConfig
from .corruption import corrupt_batch
from .losses import (alignment_loss, batch_structure, dap_loss, nid_loss,
                     rcl_loss)
from .user_encoder import UserEncoder

__all__ = ["PMMRec", "ItemEncodings", "PMMREC_VARIANTS", "make_pmmrec"]

#: Named PMMRec variants: modality switches plus the objective ablations
#: of Table VIII. One factory serves the experiment cells, the CLI and
#: the serving registry so the mappings cannot drift.
PMMREC_VARIANTS: dict[str, dict] = {
    "pmmrec": {},
    "pmmrec-text": {"modality": "text"},
    "pmmrec-vision": {"modality": "vision"},
    "pmmrec-wo-nicl": {"alignment": "none"},
    "pmmrec-only-vcl": {"alignment": "vcl"},
    "pmmrec-only-icl": {"alignment": "icl"},
    "pmmrec-only-ncl": {"alignment": "ncl"},
    "pmmrec-wo-nid": {"use_nid": False},
    "pmmrec-wo-rcl": {"use_rcl": False},
}


def make_pmmrec(variant: str, seed: int = 0) -> "PMMRec":
    """Build the named PMMRec variant (modality or ablation)."""
    if variant not in PMMREC_VARIANTS:
        raise KeyError(f"unknown PMMRec variant {variant!r}; "
                       f"choose from {sorted(PMMREC_VARIANTS)}")
    from .config import PMMRecConfig
    return PMMRec(PMMRecConfig(seed=seed, **PMMREC_VARIANTS[variant]))


@dataclass
class ItemEncodings:
    """Per-item representations for one set of item ids.

    ``sequence`` is whatever representation the user encoder consumes under
    the active modality setting; ``text_cls`` / ``vision_cls`` are the
    modality feature embeddings used by the alignment objectives (None when
    the modality is disabled).
    """

    sequence: Tensor
    text_cls: Tensor | None = None
    vision_cls: Tensor | None = None


class PMMRec(nn.Module):
    """Pure Multi-Modality based Recommender (the paper's contribution)."""

    def __init__(self, config: PMMRecConfig | None = None):
        super().__init__()
        self.config = config or PMMRecConfig()
        cfg = self.config
        world = get_world()
        rng = np.random.default_rng(cfg.seed)
        # Item encoders always start from "pre-trained" weights — exactly as
        # the paper always starts from RoBERTa / CLIP-ViT even when training
        # the recommender from scratch ("w/o PT" refers to recommendation
        # pre-training, not language/vision pre-training).
        self.text_encoder = pretrained_text_encoder(
            world, dim=cfg.dim, num_blocks=cfg.encoder_blocks,
            num_heads=cfg.encoder_heads, dropout=cfg.dropout)
        self.vision_encoder = pretrained_vision_encoder(
            world, dim=cfg.dim, num_blocks=cfg.encoder_blocks,
            num_heads=cfg.encoder_heads, dropout=cfg.dropout)
        self.fusion = MergeAttentionFusion(FusionConfig(
            dim=cfg.dim, num_heads=cfg.user_heads,
            num_blocks=cfg.fusion_blocks, dropout=cfg.dropout), rng=rng)
        self.user_encoder = UserEncoder(
            cfg.dim, num_blocks=cfg.user_blocks, num_heads=cfg.user_heads,
            max_len=cfg.max_seq_len, dropout=cfg.dropout, rng=rng)
        self.nid_head = nn.Linear(cfg.dim, 3, rng=rng)
        self.text_encoder.set_finetune_depth(cfg.finetune_top_blocks)
        self.vision_encoder.set_finetune_depth(cfg.finetune_top_blocks)
        self._loss_rng = np.random.default_rng(cfg.seed + 1)

    # -- item encoding -----------------------------------------------------------

    def encode_items(self, dataset: SeqDataset,
                     item_ids: np.ndarray) -> ItemEncodings:
        """Encode items by id under the active modality setting."""
        item_ids = np.asarray(item_ids)
        modality = self.config.modality
        text_cls = vision_cls = None
        if modality in ("multi", "text"):
            text_cls, text_hidden, text_valid = self.text_encoder(
                dataset.text_for(item_ids))
        if modality in ("multi", "vision"):
            vision_cls, vision_hidden = self.vision_encoder(
                dataset.images_for(item_ids))
        if modality == "multi":
            fused = self.fusion(text_hidden[:, 1:, :], text_valid[:, 1:],
                                vision_hidden[:, 1:, :])
            return ItemEncodings(sequence=fused, text_cls=text_cls,
                                 vision_cls=vision_cls)
        if modality == "text":
            return ItemEncodings(sequence=text_cls, text_cls=text_cls)
        return ItemEncodings(sequence=vision_cls, vision_cls=vision_cls)

    def encode_item_rows(self, dataset: SeqDataset,
                         item_ids: np.ndarray) -> np.ndarray:
        """Inference-mode representations ``(len(item_ids), d)`` by id.

        The row-wise sibling of :meth:`encode_catalog`: the streaming
        subsystem uses it to re-encode only new/changed items into a
        catalogue index instead of paying a full rebuild.
        """
        with nn.inference_mode(self):
            return self.encode_items(dataset,
                                     np.asarray(item_ids)).sequence.data

    def encode_catalog(self, dataset: SeqDataset,
                       chunk_size: int = 256) -> np.ndarray:
        """All-item representation matrix ``(num_items+1, d)`` (row 0 = pad).

        Computed in inference mode, in chunks, for full-catalogue
        ranking; the mode toggle happens once per call, not per chunk.
        """
        out = np.zeros((dataset.num_items + 1, self.config.dim),
                       dtype=self.param_dtype)
        with nn.inference_mode(self):
            for start in range(1, dataset.num_items + 1, chunk_size):
                ids = np.arange(start, min(start + chunk_size,
                                           dataset.num_items + 1))
                out[ids] = self.encode_items(dataset, ids).sequence.data
        return out

    # -- sequence encoding ----------------------------------------------------------

    def sequence_hidden(self, item_reps: Tensor, mask: np.ndarray) -> Tensor:
        """User-encoder hiddens for ``(B, L, d)`` item representations."""
        return self.user_encoder(item_reps, mask)

    def score_histories(self, dataset: SeqDataset,
                        histories: list[np.ndarray],
                        catalog: np.ndarray | None = None) -> np.ndarray:
        """Full-catalogue scores for each history's next item.

        Returns ``(N, num_items+1)`` logits; column 0 (padding) should be
        ignored by callers. ``catalog`` may be passed to reuse a
        precomputed :meth:`encode_catalog` matrix. Scoring goes through
        the shared kernel so offline eval and online serving share one
        hot path.
        """
        from ..eval.scoring import score_batch
        if catalog is None:
            catalog = self.encode_catalog(dataset)
        return score_batch(self, catalog, histories,
                           max_seq_len=self.config.max_seq_len)

    # -- training objective ------------------------------------------------------------

    def training_loss(self, dataset: SeqDataset, item_ids: np.ndarray,
                      mask: np.ndarray,
                      pretraining: bool = True) -> tuple[Tensor, dict]:
        """Multi-task loss of Eq. 12 on one padded batch.

        With ``pretraining=False`` only the DAP term is used — the paper's
        fine-tuning objective (Sec. III-E2).
        """
        cfg = self.config
        unique_ids, inverse, owner = batch_structure(item_ids, mask)
        encodings = self.encode_items(dataset, unique_ids)
        mask_f = Tensor._wrap(np.asarray(
            mask, dtype=encodings.sequence.data.dtype)[:, :, None])
        seq_reps = take_rows(encodings.sequence, inverse) * mask_f
        hidden = self.sequence_hidden(seq_reps, mask)

        loss = dap_loss(hidden, encodings.sequence, inverse, mask, owner)
        metrics = {"dap": float(loss.data)}
        if not pretraining:
            metrics["total"] = float(loss.data)
            return loss, metrics

        if (cfg.modality == "multi" and cfg.alignment != "none"):
            align = alignment_loss(encodings.text_cls, encodings.vision_cls,
                                   inverse, mask, owner,
                                   variant=cfg.alignment,
                                   temperature=cfg.temperature)
            loss = loss + align * cfg.alignment_weight
            metrics["alignment"] = float(align.data)

        if cfg.use_nid or cfg.use_rcl:
            corruption = corrupt_batch(inverse, mask, self._loss_rng,
                                       shuffle_frac=cfg.nid_shuffle_frac,
                                       replace_frac=cfg.nid_replace_frac)
            corrupt_reps = take_rows(encodings.sequence,
                                     corruption.item_ids) * mask_f
            corrupt_hidden = self.sequence_hidden(corrupt_reps, mask)
            if cfg.use_nid:
                nid = nid_loss(corrupt_hidden, self.nid_head,
                               corruption.labels, mask)
                loss = loss + nid * cfg.nid_weight
                metrics["nid"] = float(nid.data)
            if cfg.use_rcl:
                rcl = rcl_loss(hidden, corrupt_hidden, mask)
                loss = loss + rcl * cfg.rcl_weight
                metrics["rcl"] = float(rcl.data)

        metrics["total"] = float(loss.data)
        return loss, metrics
