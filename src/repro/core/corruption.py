"""Sequence corruption for the self-supervised denoising objectives.

Paper Sec. III-D1: the corrupted sequence is built by shuffling 15% of the
items and replacing a further 5% with random items from the batch. The
3-way per-position labels (unchanged / shuffled / replaced) supervise NID;
the corrupted sequence is also the positive-pair view for RCL.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CorruptionResult", "corrupt_batch",
           "LABEL_UNCHANGED", "LABEL_SHUFFLED", "LABEL_REPLACED"]

LABEL_UNCHANGED = 0
LABEL_SHUFFLED = 1
LABEL_REPLACED = 2


@dataclass
class CorruptionResult:
    """Corrupted ids plus NID supervision labels (aligned with the input)."""

    item_ids: np.ndarray     # (B, L) corrupted sequences, 0-padded like input
    labels: np.ndarray       # (B, L) in {unchanged, shuffled, replaced}


def corrupt_batch(item_ids: np.ndarray, mask: np.ndarray,
                  rng: np.random.Generator, shuffle_frac: float = 0.15,
                  replace_frac: float = 0.05) -> CorruptionResult:
    """Corrupt a padded batch of sequences.

    Shuffled positions are permuted *among themselves* within a sequence
    (so the item multiset is preserved); replaced positions are overwritten
    with items drawn from elsewhere in the batch. A position shuffled onto
    itself is relabelled unchanged — the classifier should not be asked to
    call an identical item "noise".
    """
    ids = np.asarray(item_ids).copy()
    mask = np.asarray(mask, dtype=bool)
    labels = np.zeros_like(ids)
    pool = ids[mask]
    if pool.size == 0:
        return CorruptionResult(item_ids=ids, labels=labels)

    for row in range(ids.shape[0]):
        valid_pos = np.where(mask[row])[0]
        n_valid = len(valid_pos)
        if n_valid < 2:
            continue
        n_shuffle = int(round(shuffle_frac * n_valid))
        n_replace = int(round(replace_frac * n_valid))
        chosen = rng.choice(valid_pos, size=min(n_shuffle + n_replace,
                                                n_valid), replace=False)
        shuffle_pos = chosen[:n_shuffle]
        replace_pos = chosen[n_shuffle:]
        if len(shuffle_pos) >= 2:
            perm = rng.permutation(len(shuffle_pos))
            before = ids[row, shuffle_pos].copy()
            ids[row, shuffle_pos] = before[perm]
            moved = ids[row, shuffle_pos] != before
            labels[row, shuffle_pos[moved]] = LABEL_SHUFFLED
        for pos in replace_pos:
            original = ids[row, pos]
            replacement = pool[rng.integers(len(pool))]
            ids[row, pos] = replacement
            if replacement != original:
                labels[row, pos] = LABEL_REPLACED
    return CorruptionResult(item_ids=ids, labels=labels)
