"""Task heads beyond next-item ranking (the paper's future-work section).

The conclusion names rating prediction and multi-behavior recommendation
as the directions for generalizing PMMRec. Both reduce to small heads on
top of the frozen-or-finetuned backbone:

* :class:`RatingHead` — predicts an explicit rating for a (user state,
  item) pair from the elementwise interaction of their representations.
* :class:`BehaviorHead` — classifies which behaviour type (click, like,
  purchase, …) an interaction will be, sharing the same pair features.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Tensor, concat

__all__ = ["RatingHead", "BehaviorHead", "pair_features"]


def pair_features(user_state: Tensor, item_reps: Tensor) -> Tensor:
    """Joint features of a user state and item representations.

    Concatenates the two representations with their elementwise product —
    the standard neural matrix-factorization feature map. Accepts
    ``(B, d)`` states with ``(B, d)`` items.
    """
    product = user_state * item_reps
    return concat([user_state, item_reps, product], axis=-1)


class RatingHead(nn.Module):
    """Two-layer MLP regressor for explicit ratings in ``[low, high]``.

    The output is squashed with a sigmoid and rescaled, which keeps
    predictions inside the rating scale by construction.
    """

    def __init__(self, dim: int, hidden: int | None = None,
                 low: float = 1.0, high: float = 5.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        hidden = hidden or dim
        self.low = low
        self.high = high
        self.fc1 = nn.Linear(3 * dim, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, 1, rng=rng)

    def forward(self, user_state: Tensor, item_reps: Tensor) -> Tensor:
        """Predict ratings, shape ``(B,)``."""
        features = pair_features(user_state, item_reps)
        raw = self.fc2(self.fc1(features).relu())
        squashed = raw.reshape(raw.shape[0]).sigmoid()
        return squashed * (self.high - self.low) + self.low

    def loss(self, user_state: Tensor, item_reps: Tensor,
             ratings: np.ndarray) -> Tensor:
        """Mean squared error against observed ratings."""
        predictions = self(user_state, item_reps)
        diff = predictions - Tensor(
            np.asarray(ratings, dtype=predictions.data.dtype))
        return (diff * diff).mean()


class BehaviorHead(nn.Module):
    """Softmax classifier over behaviour types (multi-behavior rec)."""

    def __init__(self, dim: int, num_behaviors: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.num_behaviors = num_behaviors
        self.fc = nn.Linear(3 * dim, num_behaviors, rng=rng)

    def forward(self, user_state: Tensor, item_reps: Tensor) -> Tensor:
        """Behaviour logits, shape ``(B, num_behaviors)``."""
        return self.fc(pair_features(user_state, item_reps))

    def loss(self, user_state: Tensor, item_reps: Tensor,
             behaviors: np.ndarray) -> Tensor:
        """Cross-entropy against observed behaviour labels (fused node)."""
        logits = self(user_state, item_reps)
        return nn.softmax_cross_entropy(logits, np.asarray(behaviors))
