"""PMMRec training objectives (paper Eq. 5-12).

All contrastive objectives are expressed through the shared
:func:`repro.nn.info_nce` primitive: each builds a score matrix plus a
positive mask (the numerator terms) and a candidate mask (the denominator
terms). Following the paper's equations literally, NICL's next-item
positive terms appear in the numerator but not the denominator.

Batch conventions: sequences arrive as a padded ``(B, L)`` id matrix with
``mask`` marking real items; items are deduplicated into ``U`` unique
representations with ``inverse`` of shape ``(B, L)`` mapping positions to
unique rows; ``owner`` of shape ``(B, U)`` marks which unique items each
user interacted with (used to exclude a user's own items from their
negative sets, per Eq. 5).
"""

from __future__ import annotations

import numpy as np

from ..nn.fused import info_nce, softmax_cross_entropy
from ..nn.tensor import Tensor, concat

__all__ = ["batch_structure", "dap_loss", "alignment_loss", "nid_loss",
           "rcl_loss", "masked_mean_pool"]


def batch_structure(item_ids: np.ndarray, mask: np.ndarray):
    """Deduplicate a padded id batch.

    Returns ``(unique_ids, inverse, owner)``: the unique real item ids, a
    ``(B, L)`` map from positions to unique rows (0 for padding — callers
    must apply ``mask``), and the ``(B, U)`` user-ownership matrix.
    """
    mask = np.asarray(mask, dtype=bool)
    ids = np.asarray(item_ids)
    unique_ids, flat_inverse = np.unique(ids[mask], return_inverse=True)
    inverse = np.zeros_like(ids)
    inverse[mask] = flat_inverse
    owner = np.zeros((ids.shape[0], len(unique_ids)), dtype=bool)
    rows = np.repeat(np.arange(ids.shape[0]), mask.sum(axis=1))
    owner[rows, flat_inverse] = True
    return unique_ids, inverse, owner


def _anchor_positions(mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Positions ``(u, l)`` that have a valid next item at ``l+1``."""
    valid_next = mask[:, :-1] & mask[:, 1:]
    users, steps = np.where(valid_next)
    return users, steps


def dap_loss(hidden: Tensor, item_reps: Tensor, inverse: np.ndarray,
             mask: np.ndarray, owner: np.ndarray) -> Tensor:
    """Dense Auto-regressive Prediction (Eq. 5).

    Every position with a next item predicts that next item against
    in-batch negatives, excluding the current user's own items from the
    negative set.
    """
    users, steps = _anchor_positions(mask)
    if len(users) == 0:
        return Tensor(0.0, dtype=hidden.data.dtype)
    anchors = hidden[(users, steps)]                    # (R, d)
    scores = anchors @ item_reps.swapaxes(0, 1)         # (R, U)
    targets = inverse[users, steps + 1]
    num_unique = item_reps.shape[0]
    positive = np.zeros((len(users), num_unique), dtype=bool)
    positive[np.arange(len(users)), targets] = True
    candidate = ~owner[users]                           # drop own items...
    candidate[np.arange(len(users)), targets] = True    # ...but keep target
    return info_nce(scores, positive, candidate)


def alignment_loss(t_cls: Tensor, v_cls: Tensor, inverse: np.ndarray,
                   mask: np.ndarray, owner: np.ndarray, variant: str = "nicl",
                   temperature: float = 0.2) -> Tensor:
    """Cross-modal contrastive alignment — VCL / ICL / NCL / NICL.

    Implements Eq. 6-9. Features are L2-normalized before scoring (paper
    Sec. III-C1); the loss is computed symmetrically for both the
    text-anchored and vision-anchored directions and averaged.

    Variant semantics (Table VIII):

    * ``vcl``  — inter-modality negatives only, self positive only.
    * ``icl``  — adds intra-modality negatives to the denominator.
    * ``ncl``  — adds next-item positives (both modalities) to ``vcl``.
    * ``nicl`` — next-item positives *and* intra-modality negatives.
    """
    if variant == "none":
        return Tensor(0.0, dtype=t_cls.data.dtype)
    users, steps = _anchor_positions(mask)
    if len(users) == 0:
        return Tensor(0.0, dtype=t_cls.data.dtype)
    anchor_idx = inverse[users, steps]
    next_idx = inverse[users, steps + 1]
    rows = np.arange(len(users))
    num_unique = t_cls.shape[0]

    t_norm = t_cls.l2_normalize()
    v_norm = v_cls.l2_normalize()
    with_next = variant in ("nicl", "ncl")
    with_intra = variant in ("nicl", "icl")

    def directed(anchor_feats: Tensor, cross_feats: Tensor,
                 same_feats: Tensor) -> Tensor:
        anchors = anchor_feats[anchor_idx]
        cross_scores = (anchors @ cross_feats.swapaxes(0, 1)) * (1.0 / temperature)
        same_scores = (anchors @ same_feats.swapaxes(0, 1)) * (1.0 / temperature)
        scores = concat([cross_scores, same_scores], axis=1)   # (R, 2U)

        positive = np.zeros((len(users), 2 * num_unique), dtype=bool)
        positive[rows, anchor_idx] = True                 # delta(t_l, v_l)
        if with_next:
            positive[rows, next_idx] = True               # delta(t_l, v_l+1)
            positive[rows, num_unique + next_idx] = True  # delta(t_l, t_l+1)

        negatives = ~owner[users]                         # other users' items
        candidate = np.zeros_like(positive)
        candidate[:, :num_unique] = negatives
        candidate[rows, anchor_idx] = True                # self pair
        if with_intra:
            candidate[:, num_unique:] = negatives
        return info_nce(scores, positive, candidate)

    loss_tv = directed(t_norm, v_norm, t_norm)
    loss_vt = directed(v_norm, t_norm, v_norm)
    return (loss_tv + loss_vt) * 0.5


def nid_loss(corrupt_hidden: Tensor, classifier, labels: np.ndarray,
             mask: np.ndarray) -> Tensor:
    """Noised Item Detection (Eq. 10): 3-way per-position classification.

    Following the paper, logits are ``ReLU(h W + b)``; padded positions are
    excluded via ``ignore_index``.
    """
    logits = classifier(corrupt_hidden).relu()
    masked_labels = np.where(np.asarray(mask, dtype=bool), labels, -1)
    # Fused softmax+NLL node (REPRO_FUSED=0 restores the unfused chain).
    return softmax_cross_entropy(logits, masked_labels, ignore_index=-1)


def masked_mean_pool(hidden: Tensor, mask: np.ndarray) -> Tensor:
    """Mean over valid positions of a ``(B, L, d)`` tensor."""
    mask = np.asarray(mask, dtype=hidden.data.dtype)
    weights = mask / np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
    return (hidden * Tensor._wrap(weights[:, :, None])).sum(axis=1)


def rcl_loss(hidden: Tensor, corrupt_hidden: Tensor,
             mask: np.ndarray) -> Tensor:
    """Robustness-aware Contrastive Learning (Eq. 11).

    The pooled original sequence representation must stay closer to its own
    corrupted view than to other users' corrupted views.
    """
    pooled = masked_mean_pool(hidden, mask)
    pooled_corrupt = masked_mean_pool(corrupt_hidden, mask)
    scores = pooled @ pooled_corrupt.swapaxes(0, 1)     # (B, B)
    positive = np.eye(scores.shape[0], dtype=bool)
    return info_nce(scores, positive)
