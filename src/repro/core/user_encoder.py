"""The user encoder: a SASRec-style causal Transformer (paper Eq. 4).

Takes a sequence of (already-computed) item representations, adds learned
position embeddings and applies unidirectional Transformer blocks; the
hidden state at position ``l`` summarizes the user's interests after their
``l``-th interaction and is scored against candidate item representations.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import init as nn_init
from ..nn.tensor import Tensor

__all__ = ["UserEncoder"]


class UserEncoder(nn.Module):
    """Causal Transformer over item-representation sequences."""

    def __init__(self, dim: int, num_blocks: int = 2, num_heads: int = 4,
                 max_len: int = 32, dropout: float = 0.1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = nn_init.default_rng(rng)
        self.dim = dim
        self.max_len = max_len
        self.pos_emb = nn.Embedding(max_len, dim, rng=rng)
        self.norm = nn.LayerNorm(dim)
        self.drop = nn.Dropout(dropout)
        self.blocks = nn.ModuleList([
            nn.TransformerBlock(dim, num_heads, dropout=dropout, rng=rng)
            for _ in range(num_blocks)])
        self.final_norm = nn.LayerNorm(dim)

    def forward(self, item_reps: Tensor, valid: np.ndarray) -> Tensor:
        """Encode ``(B, L, d)`` item representations into user hiddens.

        ``valid`` is the boolean ``(B, L)`` mask of real (non-pad)
        positions. Attention is causal *and* blocked on padded keys.
        """
        batch, length, _ = item_reps.shape
        if length > self.max_len:
            raise ValueError(f"sequence length {length} exceeds max_len "
                             f"{self.max_len}")
        if item_reps.data.dtype != self.param_dtype:
            # Mixed-precision guard: a float64 catalogue scored against a
            # float32 encoder (or vice versa) adopts the module's dtype.
            item_reps = item_reps.astype(self.param_dtype)
        # Broadcast-add the positional rows: cheaper than a batch-wide
        # gather, and the lazy-unbroadcast backward reduces it in one sum.
        x = item_reps + self.pos_emb.prefix(length)
        x = self.drop(self.norm(x))
        mask = nn.causal_mask(length)[None, None] | nn.padding_mask(valid)
        for block in self.blocks:
            x = block(x, mask=mask)
        return self.final_norm(x)
