"""Component-wise transfer learning (paper Sec. III-E3, Fig. 2e).

PMMRec's plug-and-play architecture supports five transfer settings; each
is a named subset of components whose pre-trained weights are copied into
a freshly-built target model:

===============  ==========================================  ==============
Setting          Components transferred                      Target modality
===============  ==========================================  ==============
``full``         text + vision encoders, fusion, user enc.   multi
``item_encoders`` text + vision encoders, fusion             multi
``user_encoder`` user encoder only                           multi
``text_only``    text encoder + user encoder                 text
``vision_only``  vision encoder + user encoder               vision
===============  ==========================================  ==============
"""

from __future__ import annotations

from dataclasses import replace

from ..nn.serialization import filter_state
from .config import PMMRecConfig
from .model import PMMRec

__all__ = ["TRANSFER_SETTINGS", "transfer_components", "build_target_model",
           "transferred_model"]

#: Component prefixes copied under each transfer setting.
TRANSFER_SETTINGS: dict[str, tuple[str, ...]] = {
    "full": ("text_encoder.", "vision_encoder.", "fusion.", "user_encoder."),
    "item_encoders": ("text_encoder.", "vision_encoder.", "fusion."),
    "user_encoder": ("user_encoder.",),
    "text_only": ("text_encoder.", "user_encoder."),
    "vision_only": ("vision_encoder.", "user_encoder."),
}

#: Modality the target model runs in under each setting.
_TARGET_MODALITY = {
    "full": "multi",
    "item_encoders": "multi",
    "user_encoder": "multi",
    "text_only": "text",
    "vision_only": "vision",
}


def transfer_components(source: PMMRec, target: PMMRec,
                        setting: str) -> tuple[str, ...]:
    """Copy the components named by ``setting`` from source into target.

    Returns the transferred prefixes. Components not covered by the setting
    keep the target's fresh initialization.
    """
    if setting not in TRANSFER_SETTINGS:
        raise KeyError(f"unknown transfer setting {setting!r}; "
                       f"choose from {sorted(TRANSFER_SETTINGS)}")
    prefixes = TRANSFER_SETTINGS[setting]
    state = filter_state(source.state_dict(), prefixes)
    target.load_state_dict(state, strict=False)
    return prefixes


def build_target_model(base_config: PMMRecConfig, setting: str) -> PMMRec:
    """Fresh target-platform model configured for ``setting``."""
    if setting not in TRANSFER_SETTINGS:
        raise KeyError(f"unknown transfer setting {setting!r}; "
                       f"choose from {sorted(TRANSFER_SETTINGS)}")
    config = replace(base_config, modality=_TARGET_MODALITY[setting])
    return PMMRec(config)


def transferred_model(source: PMMRec, setting: str) -> PMMRec:
    """One-call helper: build a target model and transfer into it."""
    target = build_target_model(source.config, setting)
    transfer_components(source, target, setting)
    return target
