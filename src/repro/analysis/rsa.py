"""Representational similarity analysis against world ground truth.

The synthetic world retains each item's true latent vector, so we can ask
directly: *how much of the underlying semantics did a model's item
representations recover?* This is the mechanism check for the paper's
transfer story — a model transfers to the degree it decodes content into
the shared latent space.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_similarities", "rsa_correlation", "latent_probe_r2"]


def pairwise_similarities(features: np.ndarray) -> np.ndarray:
    """Off-diagonal cosine similarities after centering, flattened."""
    f = np.asarray(features, dtype=np.float64)
    f = f - f.mean(axis=0)
    f = f / np.maximum(np.linalg.norm(f, axis=1, keepdims=True), 1e-12)
    sims = f @ f.T
    return sims[~np.eye(len(f), dtype=bool)]


def rsa_correlation(model_feats: np.ndarray,
                    reference_feats: np.ndarray) -> float:
    """Pearson correlation of pairwise-similarity structures.

    1.0 means the model's geometry mirrors the reference geometry exactly
    (up to rotation/scale); 0 means unrelated.
    """
    a = pairwise_similarities(model_feats)
    b = pairwise_similarities(reference_feats)
    if a.std() == 0.0 or b.std() == 0.0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def latent_probe_r2(model_feats: np.ndarray, latents: np.ndarray) -> float:
    """R² of a ridge probe predicting true latents from representations.

    Fits a linear map ``feats -> latents`` in closed form and reports the
    variance explained — a direct "how decodable is the world from this
    representation" number.
    """
    x = np.asarray(model_feats, dtype=np.float64)
    y = np.asarray(latents, dtype=np.float64)
    x = x - x.mean(axis=0)
    y_mean = y.mean(axis=0)
    y_centered = y - y_mean
    # Ridge regression, lambda scaled to feature variance for stability.
    lam = 1e-3 * np.trace(x.T @ x) / max(x.shape[1], 1)
    gram = x.T @ x + lam * np.eye(x.shape[1])
    weights = np.linalg.solve(gram, x.T @ y_centered)
    pred = x @ weights
    ss_res = float(((y_centered - pred) ** 2).sum())
    ss_tot = float((y_centered ** 2).sum())
    if ss_tot == 0.0:
        return 0.0
    return 1.0 - ss_res / ss_tot
