"""``repro.analysis`` — representation and recommendation diagnostics.

Tools for *why* results look the way they do: cross-modal alignment and
modality-gap measurements (the quantities NICL manipulates), RSA and
linear probes against the world's ground-truth latents (how much
semantics a model decoded), and popularity-bias diagnostics.
"""

from .alignment import alignment_score, anisotropy, modality_gap, uniformity
from .popularity import (coverage_at_k, item_frequencies,
                         mean_recommended_popularity, popularity_correlation)
from .rsa import latent_probe_r2, pairwise_similarities, rsa_correlation

__all__ = [
    "alignment_score", "modality_gap", "anisotropy", "uniformity",
    "rsa_correlation", "pairwise_similarities", "latent_probe_r2",
    "item_frequencies", "popularity_correlation", "coverage_at_k",
    "mean_recommended_popularity",
]
