"""Popularity-bias and coverage diagnostics for recommendation outputs.

Sequential recommenders can silently collapse onto popular items; these
diagnostics make that visible: correlation between an item's score and
its training frequency, the catalogue coverage of top-k lists, and the
average popularity rank of recommended items.
"""

from __future__ import annotations

import numpy as np

__all__ = ["item_frequencies", "popularity_correlation", "coverage_at_k",
           "mean_recommended_popularity"]


def item_frequencies(train_sequences: list[np.ndarray],
                     num_items: int) -> np.ndarray:
    """Training-set occurrence count per item id (index 0 = padding)."""
    counts = np.zeros(num_items + 1)
    for seq in train_sequences:
        np.add.at(counts, np.asarray(seq), 1)
    return counts


def popularity_correlation(scores: np.ndarray,
                           frequencies: np.ndarray) -> float:
    """Spearman correlation between mean item score and item frequency.

    Near 1.0 indicates the model is largely a popularity ranker.
    """
    mean_scores = np.asarray(scores)[:, 1:].mean(axis=0)
    freq = np.asarray(frequencies)[1:]
    if mean_scores.std() == 0.0 or freq.std() == 0.0:
        return 0.0

    def ranks(values):
        order = np.argsort(values)
        out = np.empty(len(values))
        out[order] = np.arange(len(values))
        return out

    return float(np.corrcoef(ranks(mean_scores), ranks(freq))[0, 1])


def coverage_at_k(scores: np.ndarray, k: int = 10) -> float:
    """Fraction of the catalogue appearing in at least one top-k list."""
    comparable = np.asarray(scores)[:, 1:]
    num_items = comparable.shape[1]
    k = min(k, num_items)
    top = np.argpartition(-comparable, k - 1, axis=1)[:, :k]
    return float(len(np.unique(top)) / num_items)


def mean_recommended_popularity(scores: np.ndarray,
                                frequencies: np.ndarray,
                                k: int = 10) -> float:
    """Average popularity percentile of the items in top-k lists.

    0.5 would match uniform recommendation; values near 1.0 mean only the
    most popular items are ever surfaced.
    """
    comparable = np.asarray(scores)[:, 1:]
    freq = np.asarray(frequencies)[1:]
    num_items = comparable.shape[1]
    k = min(k, num_items)
    order = np.argsort(freq)
    percentile = np.empty(num_items)
    percentile[order] = np.linspace(0.0, 1.0, num_items)
    top = np.argpartition(-comparable, k - 1, axis=1)[:, :k]
    return float(percentile[top].mean())
