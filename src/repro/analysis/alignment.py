"""Cross-modal representation diagnostics.

Quantifies the phenomena the paper's NICL objective is about: how close
matched text/vision pairs are relative to mismatched ones, the "modality
gap" between the two embedding clouds, and the anisotropy of a feature
space (the pathology parametric whitening targets in UniSRec).
"""

from __future__ import annotations

import numpy as np

__all__ = ["alignment_score", "modality_gap", "anisotropy",
           "uniformity"]


def _normalize(features: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    return features / np.maximum(norms, 1e-12)


def alignment_score(text_feats: np.ndarray,
                    vision_feats: np.ndarray) -> dict[str, float]:
    """Matched vs mismatched cross-modal cosine similarity.

    Returns the mean cosine of matched pairs (row i with row i), the mean
    over mismatched pairs, and their difference ``margin`` — the quantity
    NICL training should increase.
    """
    t = _normalize(np.asarray(text_feats))
    v = _normalize(np.asarray(vision_feats))
    sims = t @ v.T
    matched = float(np.mean(np.diag(sims)))
    off = sims[~np.eye(len(sims), dtype=bool)]
    mismatched = float(off.mean()) if off.size else 0.0
    return {"matched": matched, "mismatched": mismatched,
            "margin": matched - mismatched}


def modality_gap(text_feats: np.ndarray, vision_feats: np.ndarray) -> float:
    """Distance between the modality centroids on the unit sphere.

    A large gap means the two modalities occupy different cones of the
    embedding space (the well-documented contrastive "modality gap").
    """
    t = _normalize(np.asarray(text_feats)).mean(axis=0)
    v = _normalize(np.asarray(vision_feats)).mean(axis=0)
    return float(np.linalg.norm(t - v))


def anisotropy(features: np.ndarray) -> float:
    """Fraction of variance captured by the top principal direction.

    1.0 means the space has collapsed onto a line; ``1/dim`` is perfectly
    isotropic. Frozen pre-extracted features are typically far from
    isotropic, which is why UniSRec whitens them.
    """
    centered = np.asarray(features) - np.asarray(features).mean(axis=0)
    singular = np.linalg.svd(centered, compute_uv=False)
    total = float((singular ** 2).sum())
    if total == 0.0:
        return 0.0
    return float(singular[0] ** 2 / total)


def uniformity(features: np.ndarray, t: float = 2.0) -> float:
    """Wang & Isola's uniformity: log mean pairwise Gaussian potential.

    Lower is more uniform (better spread on the sphere); contrastive
    objectives trade alignment against this quantity.
    """
    f = _normalize(np.asarray(features))
    sq_dists = ((f[:, None, :] - f[None, :, :]) ** 2).sum(axis=2)
    mask = ~np.eye(len(f), dtype=bool)
    return float(np.log(np.exp(-t * sq_dists[mask]).mean()))
