"""Experiment execution: disk cache + parallel cell runner.

Every table/figure decomposes into independent *cells* (one training run
each). Cells are pure functions of their keyword arguments, so results are
cached on disk under a stable hash and expensive tables are only computed
once; re-running ``pytest benchmarks/`` afterwards replays from cache.
Set ``REPRO_FORCE=1`` to ignore the cache and recompute.

Cells run in a process pool (``REPRO_WORKERS`` overrides the worker count)
because the numpy substrate is single-threaded per run.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable

__all__ = ["cache_dir", "cell_key", "run_cells", "load_cached",
           "CACHE_VERSION"]

#: Bump to invalidate all cached results after behaviour-changing edits.
#: v5: experiment cells flipped to float32 (REPRO_DTYPE overrides).
#: v6: fused autograd core — float32 GELU now uses the vectorized
#:     single-precision erf (≤7e-7 abs difference), dropout RNG switched
#:     to SFC64, and backward-pass rounding changed at the ulp level;
#:     cached float32 training trajectories are no longer reproducible.
CACHE_VERSION = 6

#: Active experiment precision, frozen at import so the training dtype
#: (cells.py budgets) and the cache key always agree. REPRO_DTYPE
#: overrides; tests toggling precision in-process must patch this AND
#: the cells budgets together (see scripts/validate_float32.py).
EXPERIMENT_DTYPE = os.environ.get("REPRO_DTYPE", "float32")


def cache_dir() -> Path:
    """Root of the on-disk experiment cache (created on demand)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        root = Path(override)
    else:
        root = Path(__file__).resolve().parents[3] / ".repro_cache"
    root.mkdir(parents=True, exist_ok=True)
    return root


def cell_key(fn_name: str, **kwargs) -> str:
    """Stable cache key for one cell invocation.

    The active experiment precision (``EXPERIMENT_DTYPE``) is part of
    the key so float32 and float64 results never alias.
    """
    payload = json.dumps({"fn": fn_name, "v": CACHE_VERSION,
                          "dtype": EXPERIMENT_DTYPE, **kwargs},
                         sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


def load_cached(key: str) -> dict | None:
    """Return a cached cell result, or None."""
    if os.environ.get("REPRO_FORCE") == "1":
        return None
    path = cache_dir() / f"{key}.json"
    if path.exists():
        with open(path) as handle:
            return json.load(handle)
    return None


def _store(key: str, result: dict) -> None:
    path = cache_dir() / f"{key}.json"
    with open(path, "w") as handle:
        json.dump(result, handle)


def _worker(payload: tuple[str, dict]) -> dict:
    """Resolve and execute one cell inside a worker process."""
    fn_name, kwargs = payload
    from . import cells
    fn: Callable[..., dict] = getattr(cells, fn_name)
    return fn(**kwargs)


def _default_workers() -> int:
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(int(env), 1)
    return max(min((os.cpu_count() or 2) - 2, 14), 1)


def run_cells(tasks: dict[Any, tuple[str, dict]],
              workers: int | None = None) -> dict[Any, dict]:
    """Execute cells, reading/writing the cache; returns results by task id.

    ``tasks`` maps an arbitrary id to ``(cell_fn_name, kwargs)``. Cached
    cells never reach the pool; the rest run in parallel.
    """
    results: dict[Any, dict] = {}
    pending: dict[Any, tuple[str, dict, str]] = {}
    for task_id, (fn_name, kwargs) in tasks.items():
        key = cell_key(fn_name, **kwargs)
        cached = load_cached(key)
        if cached is not None:
            results[task_id] = cached
        else:
            pending[task_id] = (fn_name, kwargs, key)

    if not pending:
        return results

    worker_count = workers or _default_workers()
    if worker_count == 1 or len(pending) == 1:
        for task_id, (fn_name, kwargs, key) in pending.items():
            result = _worker((fn_name, kwargs))
            _store(key, result)
            results[task_id] = result
        return results

    with ProcessPoolExecutor(max_workers=worker_count) as pool:
        futures = {task_id: pool.submit(_worker, (fn_name, kwargs))
                   for task_id, (fn_name, kwargs, _) in pending.items()}
        for task_id, future in futures.items():
            result = future.result()
            _store(pending[task_id][2], result)
            results[task_id] = result
    return results
