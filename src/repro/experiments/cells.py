"""Atomic experiment cells — one training/evaluation run each.

Every function here is a pure function of its keyword arguments returning
a JSON-serializable dict, so the runner can cache and parallelize freely.
Model checkpoints produced by pre-training cells are written into the
cache directory and referenced by name.
"""

from __future__ import annotations

from ..baselines import TRANSFERABLE_BASELINES, make_baseline
from ..core import PMMRec, PMMRecConfig, transferred_model
from ..data import build_dataset, cold_start_examples, fuse_datasets
from ..eval import evaluate_model
from ..nn.serialization import load_checkpoint, save_checkpoint
from ..train import TrainConfig, Trainer
from .runner import EXPERIMENT_DTYPE, cache_dir

__all__ = ["source_performance", "pretrain_model", "transfer_finetune",
            "ablation_variant", "design_ablation"]

#: Experiment precision (frozen in runner.EXPERIMENT_DTYPE, REPRO_DTYPE
#: overrides). The PR-1 substrate made float32 a first-class dtype
#: (≈2× on the matmul-bound paths) and the tables' rank-based metrics
#: are insensitive to the cast (deltas recorded in
#: results/float32_notes.md), so every cell now trains and evaluates in
#: float32; the result cache keys on the same frozen constant.

#: Training budgets per phase (see DESIGN.md §5): from-scratch modality
#: models converge slowly (that is itself a paper finding, Fig. 3), so
#: scratch runs get a long budget; fine-tuning from a pre-trained state
#: converges within a few epochs.
SCRATCH = dict(epochs=60, patience=8, batch_size=32, eval_every=2,
               dtype=EXPERIMENT_DTYPE)
PRETRAIN = dict(epochs=16, patience=4, batch_size=32, eval_every=2,
                dtype=EXPERIMENT_DTYPE)
FINETUNE = dict(epochs=24, patience=5, batch_size=24,
                dtype=EXPERIMENT_DTYPE)

#: Modality-based models optimize reliably at a higher learning rate than
#: the ID-based ones at this scale (per-method LR tuning, as is standard).
_MODALITY_LR = 4e-3
_DEFAULT_LR = 2e-3


def _lr_for(method: str) -> float:
    if method.startswith("pmmrec") or method in ("morec++", "morec"):
        return _MODALITY_LR
    return _DEFAULT_LR

_EVAL_KS = (10, 20, 50)


def _make_pmmrec(variant: str, seed: int) -> PMMRec:
    """PMMRec factory for the named variant (modality or ablation)."""
    from ..core import make_pmmrec
    return make_pmmrec(variant, seed=seed)


def _build(method: str, dataset, seed: int):
    """Instantiate any method (baseline or PMMRec variant) for a dataset."""
    if method.startswith("pmmrec"):
        return _make_pmmrec(method, seed)
    return make_baseline(method, dataset, seed=seed)


def _is_multitask(method: str) -> bool:
    return method.startswith("pmmrec")


def source_performance(method: str, dataset_name: str, profile: str,
                       seed: int = 1, with_cold: bool = True) -> dict:
    """Train ``method`` from scratch on a source dataset (Tables III & VII).

    Returns test metrics and, optionally, metrics on the cold-start
    evaluation subset built from the same dataset.
    """
    dataset = build_dataset(dataset_name, profile=profile)
    model = _build(method, dataset, seed)
    trainer = Trainer(model, dataset,
                      TrainConfig(seed=seed, lr=_lr_for(method), **SCRATCH),
                      pretraining=_is_multitask(method))
    fit = trainer.fit()
    test = evaluate_model(model, dataset, dataset.split.test, ks=_EVAL_KS)
    out = {"method": method, "dataset": dataset_name,
           "best_val": fit.best_metric, "epochs": fit.epochs_run,
           "test": test}
    if with_cold:
        cold = cold_start_examples(dataset.sequences, dataset.split.train,
                                   dataset.num_items, threshold=10)
        out["cold"] = evaluate_model(model, dataset, cold, ks=(10,))
        out["cold_examples"] = len(cold)
    return out


def pretrain_model(method: str, sources: tuple[str, ...] | list[str],
                   profile: str, seed: int = 1) -> dict:
    """Pre-train a transferable method on fused source datasets (Sec. IV-C).

    The checkpoint is stored in the cache directory; its name is returned
    for downstream fine-tuning cells.
    """
    sources = tuple(sources)
    if method not in TRANSFERABLE_BASELINES and not method.startswith("pmmrec"):
        raise ValueError(f"{method!r} is not transferable")
    datasets = [build_dataset(name, profile=profile) for name in sources]
    corpus = (fuse_datasets(datasets, name="fused-" + "-".join(sources))
              if len(datasets) > 1 else datasets[0])
    model = _build(method, corpus, seed)
    trainer = Trainer(model, corpus,
                      TrainConfig(seed=seed, lr=_lr_for(method), **PRETRAIN),
                      pretraining=_is_multitask(method))
    fit = trainer.fit()
    ckpt_name = f"ckpt-{method}-{'-'.join(sources)}-{profile}-s{seed}"
    save_checkpoint(model, str(cache_dir() / ckpt_name))
    return {"method": method, "sources": list(sources),
            "checkpoint": ckpt_name, "best_val": fit.best_metric,
            "epochs": fit.epochs_run}


def transfer_finetune(method: str, target: str, profile: str,
                      use_pt: bool, checkpoint: str | None = None,
                      setting: str = "full", seed: int = 1,
                      record_curve: bool = False,
                      curve_epochs: int = 24) -> dict:
    """Fine-tune on a downstream dataset (Tables IV-VI, Figure 3).

    With ``use_pt`` the model starts from ``checkpoint``; PMMRec transfers
    the component subset named by ``setting`` (Sec. III-E3). Without
    ``use_pt`` the model trains from scratch on the target. When
    ``record_curve`` is set, early stopping is disabled so the full
    convergence trajectory is recorded (Figure 3).
    """
    dataset = build_dataset(target, profile=profile)
    if method.startswith("pmmrec"):
        if use_pt:
            source_model = _make_pmmrec("pmmrec", seed)
            state = load_checkpoint(str(cache_dir() / (checkpoint + ".npz")))
            source_model.load_state_dict(state)
            model = transferred_model(source_model, setting)
        else:
            model = _make_pmmrec(method, seed)
    else:
        model = _build(method, dataset, seed)
        if use_pt:
            state = load_checkpoint(str(cache_dir() / (checkpoint + ".npz")))
            model.load_state_dict(state)

    budget = dict(FINETUNE if use_pt else SCRATCH)
    if record_curve:
        budget.update(epochs=curve_epochs, patience=curve_epochs + 1,
                      eval_every=1)
    # Paper Sec. III-E2: fine-tuning uses the DAP objective only; training
    # from scratch keeps the full multi-task objective.
    multitask = _is_multitask(method) and not use_pt
    trainer = Trainer(model, dataset,
                      TrainConfig(seed=seed, lr=_lr_for(method), **budget),
                      pretraining=multitask)
    fit = trainer.fit()
    test = evaluate_model(model, dataset, dataset.split.test, ks=_EVAL_KS)
    return {"method": method, "target": target, "setting": setting,
            "use_pt": use_pt, "best_val": fit.best_metric,
            "epochs": fit.epochs_run, "test": test,
            "curve": [[e, m] for e, m in fit.curve]}


def ablation_variant(variant: str, dataset_name: str, profile: str,
                     seed: int = 1) -> dict:
    """Train a PMMRec objective-ablation variant from scratch (Table VIII)."""
    dataset = build_dataset(dataset_name, profile=profile)
    model = _make_pmmrec(variant, seed)
    trainer = Trainer(model, dataset,
                      TrainConfig(seed=seed, lr=_MODALITY_LR, **SCRATCH),
                      pretraining=True)
    fit = trainer.fit()
    test = evaluate_model(model, dataset, dataset.split.test, ks=(10,))
    return {"variant": variant, "dataset": dataset_name,
            "best_val": fit.best_metric, "epochs": fit.epochs_run,
            "test": test}


def design_ablation(kind: str, value: float, dataset_name: str,
                    profile: str, seed: int = 1) -> dict:
    """Extension ablations over design choices DESIGN.md calls out.

    ``kind='temperature'`` sweeps the contrastive temperature of the
    alignment objective; ``kind='corruption'`` sweeps the NID shuffle rate
    (replacement stays at the paper's 1:3 ratio to shuffling).
    """
    dataset = build_dataset(dataset_name, profile=profile)
    if kind == "temperature":
        config = PMMRecConfig(seed=seed, temperature=float(value))
    elif kind == "corruption":
        config = PMMRecConfig(seed=seed, nid_shuffle_frac=float(value),
                              nid_replace_frac=float(value) / 3.0)
    else:
        raise KeyError(f"unknown design ablation {kind!r}")
    model = PMMRec(config)
    trainer = Trainer(model, dataset,
                      TrainConfig(seed=seed, lr=_MODALITY_LR, **SCRATCH),
                      pretraining=True)
    fit = trainer.fit()
    test = evaluate_model(model, dataset, dataset.split.test, ks=(10,))
    return {"kind": kind, "value": value, "dataset": dataset_name,
            "best_val": fit.best_metric, "epochs": fit.epochs_run,
            "test": test}
