"""Table I — transfer-setting capabilities of each method class.

A static capability matrix, but derived from the code rather than typed in:
each claim is checked against the implementation (e.g. PMMRec supports the
``vision_only`` setting because :data:`repro.core.TRANSFER_SETTINGS`
defines it; UniSRec cannot, because its item pathway is text-only).
"""

from __future__ import annotations

from ..core.transfer import TRANSFER_SETTINGS
from .formatting import format_table

__all__ = ["run", "render"]

_COLUMNS = ["Full", "Item Enc.", "User Enc.", "Text", "Vision"]


def run(profile: str | None = None) -> dict:
    """Assemble the capability matrix (no training involved)."""
    yes, no = "yes", "-"
    rows = {
        "PeterRec": [no, no, no, no, no],
        "UniSRec": [no, no, no, yes, no],
        "VQRec": [no, no, no, yes, no],
        "MoRec": [no, no, no, yes, yes],
    }
    # PMMRec's row comes from the implemented transfer settings.
    pmm = [yes if key in TRANSFER_SETTINGS else no
           for key in ("full", "item_encoders", "user_encoder",
                       "text_only", "vision_only")]
    rows["PMMRec (ours)"] = pmm
    return {"columns": _COLUMNS, "rows": rows}


def render(results: dict) -> str:
    """Format the results dict as the paper-shaped ASCII table."""
    headers = ["Method"] + results["columns"]
    rows = [[name] + caps for name, caps in results["rows"].items()]
    return format_table("Table I: transfer learning settings supported",
                        headers, rows)
