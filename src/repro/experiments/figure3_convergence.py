"""Figure 3 — convergence curves on downstream datasets.

For each of the 10 targets, fine-tune PMMRec under four settings — from
scratch (w/o PT), transferring item encoders (PT-I), transferring the user
encoder (PT-U) and full transfer (PT) — with early stopping disabled, and
record validation HR@10 per epoch. The paper's finding: pre-training both
lifts the curve and collapses time-to-best to a few epochs, with PT-I
tracking full PT.
"""

from __future__ import annotations

from ..data import downstream_names, get_profile
from .formatting import format_table, pct, sparkline
from .runner import run_cells
from .table4_transfer import pretrain_all

__all__ = ["run", "render", "SETTINGS", "CURVE_EPOCHS"]

#: curve label -> (use_pt, transfer setting)
SETTINGS: dict[str, tuple[bool, str]] = {
    "w/o PT": (False, "full"),
    "w. PT-I": (True, "item_encoders"),
    "w. PT-U": (True, "user_encoder"),
    "w. PT": (True, "full"),
}

CURVE_EPOCHS = 24


def run(profile: str | None = None, workers: int | None = None) -> dict:
    """Record fixed-length convergence curves for all settings/targets."""
    profile_name = get_profile(profile).name
    checkpoint = pretrain_all(profile_name, workers=workers)["pmmrec"]

    tasks = {}
    for target in downstream_names():
        for label, (use_pt, setting) in SETTINGS.items():
            tasks[(target, label)] = (
                "transfer_finetune",
                dict(method="pmmrec", target=target, profile=profile_name,
                     use_pt=use_pt,
                     checkpoint=checkpoint if use_pt else None,
                     setting=setting, seed=1, record_curve=True,
                     curve_epochs=CURVE_EPOCHS))
    results = run_cells(tasks, workers=workers)

    curves: dict[str, dict[str, list[list[float]]]] = {}
    for (target, label), res in results.items():
        curves.setdefault(target, {})[label] = res["curve"]
    return {"profile": profile_name, "curves": curves}


def render(results: dict) -> str:
    """Render per-target convergence sparklines and summary columns."""
    headers = ["Dataset", "Setting", "epoch-1", "best", "best@ep",
               f"HR@10 over {CURVE_EPOCHS} epochs"]
    rows = []
    for target, by_label in results["curves"].items():
        for label in SETTINGS:
            curve = by_label[label]
            values = [point[1] for point in curve]
            best = max(values)
            best_ep = curve[values.index(best)][0]
            rows.append([target, label, pct(values[0]), pct(best),
                         str(best_ep), sparkline(values)])
    return format_table("Figure 3: convergence of fine-tuning (val HR@10)",
                        headers, rows)
