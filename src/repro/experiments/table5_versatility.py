"""Table V — versatile transfer learning settings of PMMRec.

Eight columns per target: PMMRec-T / PMMRec-V (single-modality) without
and with pre-training, and multi-modal PMMRec from scratch / transferring
item encoders (PT-I) / transferring the user encoder (PT-U) / full
transfer (PT). Shares the fused-source checkpoint with Table IV.
"""

from __future__ import annotations

from ..data import downstream_names, get_profile
from .formatting import format_table, pct
from .runner import run_cells
from .table4_transfer import pretrain_all

__all__ = ["run", "render", "COLUMNS"]

#: column label -> (method, use_pt, transfer setting)
COLUMNS: dict[str, tuple[str, bool, str]] = {
    "T w/o PT": ("pmmrec-text", False, "full"),
    "T w. PT": ("pmmrec", True, "text_only"),
    "V w/o PT": ("pmmrec-vision", False, "full"),
    "V w. PT": ("pmmrec", True, "vision_only"),
    "M w/o PT": ("pmmrec", False, "full"),
    "M w. PT-I": ("pmmrec", True, "item_encoders"),
    "M w. PT-U": ("pmmrec", True, "user_encoder"),
    "M w. PT": ("pmmrec", True, "full"),
}

_METRICS = ("hr@10", "ndcg@10")


def run(profile: str | None = None, workers: int | None = None) -> dict:
    """Evaluate all 8 settings on all 10 downstream datasets."""
    profile_name = get_profile(profile).name
    checkpoint = pretrain_all(profile_name, workers=workers)["pmmrec"]

    tasks = {}
    for target in downstream_names():
        for label, (method, use_pt, setting) in COLUMNS.items():
            tasks[(target, label)] = (
                "transfer_finetune",
                dict(method=method, target=target, profile=profile_name,
                     use_pt=use_pt,
                     checkpoint=checkpoint if use_pt else None,
                     setting=setting, seed=1))
    results = run_cells(tasks, workers=workers)

    table: dict[str, dict[str, dict[str, float]]] = {}
    for (target, label), res in results.items():
        table.setdefault(target, {})[label] = res["test"]
    return {"profile": profile_name, "table": table}


def render(results: dict) -> str:
    """Format the results dict as the paper-shaped ASCII table."""
    headers = ["Dataset", "Metric"] + list(COLUMNS)
    rows = []
    for target, by_label in results["table"].items():
        for metric in _METRICS:
            row = [target, metric]
            row.extend(pct(by_label[c][metric]) for c in COLUMNS)
            rows.append(row)
    return format_table(
        "Table V: versatile transfer learning settings (%)", headers, rows)
