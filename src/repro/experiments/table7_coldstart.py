"""Table VII — cold-start comparison on the 4 source datasets.

Items with fewer than 10 training occurrences are "cold"; evaluation
sub-sequences end at a cold item (Sec. IV-A1). The paper's finding: the
ID-based SASRec collapses on cold items while every PMMRec variant stays
functional, with the text variant ahead of the vision variant.

Cold metrics are computed inside the same :func:`source_performance`
cells as Table III, so the models are shared (and cached) between the two
tables.
"""

from __future__ import annotations

from ..data import get_profile, source_names
from .formatting import format_table
from .runner import run_cells

__all__ = ["run", "render", "METHODS"]

METHODS = ("sasrec", "pmmrec-text", "pmmrec-vision", "pmmrec")
_METRICS = ("hr@10", "ndcg@10")


def run(profile: str | None = None, workers: int | None = None) -> dict:
    """Cold-start metrics for SASRec and the PMMRec variants per source."""
    profile_name = get_profile(profile).name
    tasks = {}
    for dataset in source_names():
        for method in METHODS:
            tasks[(dataset, method)] = (
                "source_performance",
                dict(method=method, dataset_name=dataset,
                     profile=profile_name, seed=1))
    results = run_cells(tasks, workers=workers)
    table: dict[str, dict[str, dict[str, float]]] = {}
    counts: dict[str, int] = {}
    for (dataset, method), res in results.items():
        table.setdefault(dataset, {})[method] = res["cold"]
        counts[dataset] = res["cold_examples"]
    return {"profile": profile_name, "table": table, "examples": counts}


def render(results: dict) -> str:
    """Format the results dict as the paper-shaped ASCII table."""
    headers = ["Dataset", "Metric"] + [m.upper() for m in METHODS]
    rows = []
    for dataset, by_method in results["table"].items():
        for metric in _METRICS:
            row = [dataset, metric]
            row.extend(f"{100 * by_method[m][metric]:.4f}" for m in METHODS)
            rows.append(row)
    title = ("Table VII: cold-start comparison (%), "
             f"examples per dataset: {results['examples']}")
    return format_table(title, headers, rows)
