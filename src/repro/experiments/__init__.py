"""``repro.experiments`` — regenerate every table and figure of the paper.

Each module exposes ``run(profile=None, workers=None) -> dict`` (parallel,
disk-cached) and ``render(results) -> str`` (the paper-shaped ASCII
table). The benchmark suite under ``benchmarks/`` wraps these one-to-one.
"""

from . import (figure3_convergence, table1_capabilities, table2_datasets,
               table3_source, table4_transfer, table5_versatility,
               table6_single_source, table7_coldstart, table8_ablation)
from .runner import cache_dir, cell_key, load_cached, run_cells

__all__ = [
    "table1_capabilities", "table2_datasets", "table3_source",
    "table4_transfer", "table5_versatility", "table6_single_source",
    "table7_coldstart", "table8_ablation", "figure3_convergence",
    "run_cells", "cache_dir", "cell_key", "load_cached",
]

ALL_TABLES = {
    "table1": table1_capabilities,
    "table2": table2_datasets,
    "table3": table3_source,
    "table4": table4_transfer,
    "table5": table5_versatility,
    "table6": table6_single_source,
    "table7": table7_coldstart,
    "table8": table8_ablation,
    "figure3": figure3_convergence,
}
