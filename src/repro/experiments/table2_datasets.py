"""Table II — dataset statistics after preprocessing.

Regenerates the paper's dataset table for the synthetic catalogue: users,
items, actions, average sequence length and sparsity for the fused source,
each individual source and the 10 downstream datasets.
"""

from __future__ import annotations

from ..data import (build_dataset, downstream_names, fuse_datasets,
                    get_profile, source_names)
from .formatting import format_table

__all__ = ["run", "render"]


def run(profile: str | None = None) -> dict:
    """Build all datasets and collect their Table II statistics."""
    profile_name = get_profile(profile).name
    rows: dict[str, dict] = {}
    sources = [build_dataset(name, profile=profile_name)
               for name in source_names()]
    fused = fuse_datasets(sources, name="Source")
    rows["Source"] = fused.stats
    for ds in sources:
        rows["-" + ds.name] = ds.stats
    for name in downstream_names():
        rows[name] = build_dataset(name, profile=profile_name).stats
    return {"profile": profile_name, "rows": rows}


def render(results: dict) -> str:
    """Format the results dict as the paper-shaped ASCII table."""
    headers = ["Dataset", "#users", "#items", "#actions", "avg.length",
               "sparsity"]
    rows = []
    for name, stats in results["rows"].items():
        rows.append([name, stats["users"], stats["items"], stats["actions"],
                     f"{stats['avg_length']:.2f}",
                     f"{100 * stats['sparsity']:.2f}%"])
    title = (f"Table II: dataset statistics after preprocessing "
             f"(profile={results['profile']})")
    return format_table(title, headers, rows)
