"""Table VI — single-source, cross-platform transfer learning.

PMMRec is pre-trained on one source platform at a time and fine-tuned on
each of the 10 downstream datasets. Columns: ID-based SASRec from scratch,
PMMRec from scratch ("No Source"), then one column per single source. The
paper's headline findings: the homogeneous source (diagonal) wins, and
complex→simple transfers (Bili/Kwai → HM/Amazon) hold up better than
simple→complex ones.
"""

from __future__ import annotations

from ..data import downstream_names, get_profile, source_names
from .formatting import format_table, pct
from .runner import run_cells

__all__ = ["run", "render"]

_METRICS = ("hr@10", "ndcg@10")


def run(profile: str | None = None, workers: int | None = None) -> dict:
    """Pre-train per source, then fine-tune on every downstream target."""
    profile_name = get_profile(profile).name
    pretrain_tasks = {
        source: ("pretrain_model",
                 dict(method="pmmrec", sources=[source],
                      profile=profile_name, seed=1))
        for source in source_names()}
    checkpoints = {source: res["checkpoint"] for source, res
                   in run_cells(pretrain_tasks, workers=workers).items()}

    tasks = {}
    for target in downstream_names():
        tasks[(target, "sasrec")] = (
            "transfer_finetune",
            dict(method="sasrec", target=target, profile=profile_name,
                 use_pt=False, checkpoint=None, setting="full", seed=1))
        tasks[(target, "scratch")] = (
            "transfer_finetune",
            dict(method="pmmrec", target=target, profile=profile_name,
                 use_pt=False, checkpoint=None, setting="full", seed=1))
        for source in source_names():
            tasks[(target, source)] = (
                "transfer_finetune",
                dict(method="pmmrec", target=target, profile=profile_name,
                     use_pt=True, checkpoint=checkpoints[source],
                     setting="full", seed=1))
    results = run_cells(tasks, workers=workers)

    table: dict[str, dict[str, dict[str, float]]] = {}
    for (target, column), res in results.items():
        table.setdefault(target, {})[column] = res["test"]
    return {"profile": profile_name, "table": table}


def render(results: dict) -> str:
    """Format the results dict as the paper-shaped ASCII table."""
    columns = ["sasrec", "scratch"] + list(source_names())
    headers = (["Dataset", "Metric", "ID w/o PT", "w/o PT"]
               + [f"src:{s}" for s in source_names()])
    rows = []
    for target, by_column in results["table"].items():
        home = target.split("_")[0]
        for metric in _METRICS:
            row = [target, metric]
            for column in columns:
                cell = pct(by_column[column][metric])
                if column == home:
                    cell += "*"        # homogeneous-source cell
                row.append(cell)
            rows.append(row)
    return format_table(
        "Table VI: single-source transfer (%; * = homogeneous source)",
        headers, rows)
