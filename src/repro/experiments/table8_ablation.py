"""Table VIII — ablation of PMMRec's objective functions.

Six variants on four downstream datasets: removing NICL entirely, degrading
it to VCL (inter-modality only) or NCL (no intra-modality negatives), and
removing NID or RCL. Matches the paper's variant set; training is from
scratch with the remaining objectives active.
"""

from __future__ import annotations

from ..data import get_profile
from .formatting import format_table, pct
from .runner import run_cells

__all__ = ["run", "render", "VARIANTS", "DATASETS"]

#: column label -> PMMRec variant name understood by the cells module.
VARIANTS: dict[str, str] = {
    "w/o NICL": "pmmrec-wo-nicl",
    "only VCL": "pmmrec-only-vcl",
    "only NCL": "pmmrec-only-ncl",
    "w/o NID": "pmmrec-wo-nid",
    "w/o RCL": "pmmrec-wo-rcl",
    "PMMRec": "pmmrec",
}

#: The four datasets of the paper's Table VIII.
DATASETS = ("bili_movie", "kwai_movie", "hm_shoes", "amazon_shoes")

_METRICS = ("hr@10", "ndcg@10")


def run(profile: str | None = None, workers: int | None = None) -> dict:
    """Train each ablation variant on each Table VIII dataset."""
    profile_name = get_profile(profile).name
    tasks = {}
    for dataset in DATASETS:
        for label, variant in VARIANTS.items():
            tasks[(dataset, label)] = (
                "ablation_variant",
                dict(variant=variant, dataset_name=dataset,
                     profile=profile_name, seed=1))
    results = run_cells(tasks, workers=workers)
    table: dict[str, dict[str, dict[str, float]]] = {}
    for (dataset, label), res in results.items():
        table.setdefault(dataset, {})[label] = res["test"]
    return {"profile": profile_name, "table": table}


def render(results: dict) -> str:
    """Format the results dict as the paper-shaped ASCII table."""
    headers = ["Dataset", "Metric"] + list(VARIANTS)
    rows = []
    for dataset, by_label in results["table"].items():
        for metric in _METRICS:
            row = [dataset, metric]
            row.extend(pct(by_label[c][metric]) for c in VARIANTS)
            rows.append(row)
    return format_table("Table VIII: objective ablation (%)", headers, rows)
