"""Table III — performance comparison on the 4 source datasets.

9 methods (3 pure-ID, 2 ID+side-features, 3 transferable baselines, plus
PMMRec) trained from scratch on each source, reported with HR@{10,20,50}
and NDCG@{10,20,50} under full-catalogue ranking, with PMMRec's
improvement over the best baseline per row.
"""

from __future__ import annotations

from ..data import get_profile, source_names
from .formatting import format_table, pct
from .runner import run_cells

__all__ = ["run", "render", "METHODS"]

#: Column order of the paper's Table III.
METHODS = ("grurec", "nextitnet", "sasrec", "fdsa", "carca++",
           "unisrec", "vqrec", "morec++", "pmmrec")

_METRICS = ("hr@10", "hr@20", "hr@50", "ndcg@10", "ndcg@20", "ndcg@50")


def run(profile: str | None = None, workers: int | None = None) -> dict:
    """Train every method on every source dataset (parallel, cached)."""
    profile_name = get_profile(profile).name
    tasks = {}
    for dataset in source_names():
        for method in METHODS:
            tasks[(dataset, method)] = (
                "source_performance",
                dict(method=method, dataset_name=dataset,
                     profile=profile_name, seed=1))
    results = run_cells(tasks, workers=workers)
    table: dict[str, dict[str, dict[str, float]]] = {}
    for (dataset, method), res in results.items():
        table.setdefault(dataset, {})[method] = res["test"]
    return {"profile": profile_name, "table": table}


def render(results: dict) -> str:
    """Format the results dict as the paper-shaped ASCII table."""
    headers = ["Dataset", "Metric"] + [m.upper() for m in METHODS] + ["Improv."]
    rows = []
    for dataset, by_method in results["table"].items():
        for metric in _METRICS:
            row = [dataset, metric]
            values = [by_method[m][metric] for m in METHODS]
            for v in values:
                row.append(pct(v))
            best_baseline = max(values[:-1])
            ours = values[-1]
            gain = ((ours - best_baseline) / best_baseline * 100.0
                    if best_baseline > 0 else 0.0)
            row.append(f"{gain:+.2f}%")
            rows.append(row)
    return format_table("Table III: source-dataset comparison (%)",
                        headers, rows)
