"""ASCII rendering of experiment tables (mirrors the paper's layout)."""

from __future__ import annotations

__all__ = ["format_table", "pct", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def pct(value: float, digits: int = 2) -> str:
    """Render a fraction as the percentage format the paper uses."""
    return f"{100.0 * value:.{digits}f}"


def format_table(title: str, headers: list[str],
                 rows: list[list[str]]) -> str:
    """Align columns and frame the table with its title."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt_row(cells) -> str:
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==", fmt_row(headers), sep]
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


def sparkline(values: list[float], width: int = 24) -> str:
    """Compress a metric curve into a unicode sparkline (for Figure 3)."""
    if not values:
        return ""
    if len(values) > width:
        # Downsample evenly to the target width.
        idx = [round(i * (len(values) - 1) / (width - 1))
               for i in range(width)]
        values = [values[i] for i in idx]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(_BLOCKS[int((v - low) / span * (len(_BLOCKS) - 1))]
                   for v in values)
