"""Table IV — transfer learning on the 10 downstream datasets.

Transferable methods (UniSRec, VQRec, MoRec++, PMMRec) are pre-trained on
the fused 4 source datasets and fine-tuned per target ("w. PT"), and also
trained from scratch ("w/o PT"); SASRec trains from scratch only (its ID
table cannot transfer). Reported with HR@10 / NDCG@10 and PMMRec's
improvement over the best competitor.
"""

from __future__ import annotations

from ..data import downstream_names, get_profile, source_names
from .formatting import format_table, pct
from .runner import run_cells

__all__ = ["run", "render", "TRANSFER_METHODS"]

TRANSFER_METHODS = ("unisrec", "vqrec", "morec++", "pmmrec")
_METRICS = ("hr@10", "ndcg@10")


def pretrain_all(profile_name: str, workers: int | None = None) -> dict[str, str]:
    """Pre-train each transferable method on the fused sources (cached).

    Returns checkpoint names by method.
    """
    tasks = {method: ("pretrain_model",
                      dict(method=method, sources=list(source_names()),
                           profile=profile_name, seed=1))
             for method in TRANSFER_METHODS}
    results = run_cells(tasks, workers=workers)
    return {method: res["checkpoint"] for method, res in results.items()}


def run(profile: str | None = None, workers: int | None = None) -> dict:
    """Full Table IV: pre-train once, then fan out over the 10 targets."""
    profile_name = get_profile(profile).name
    checkpoints = pretrain_all(profile_name, workers=workers)

    tasks = {}
    for target in downstream_names():
        tasks[(target, "sasrec", False)] = (
            "transfer_finetune",
            dict(method="sasrec", target=target, profile=profile_name,
                 use_pt=False, checkpoint=None, setting="full", seed=1))
        for method in TRANSFER_METHODS:
            tasks[(target, method, False)] = (
                "transfer_finetune",
                dict(method=method, target=target, profile=profile_name,
                     use_pt=False, checkpoint=None, setting="full", seed=1))
            tasks[(target, method, True)] = (
                "transfer_finetune",
                dict(method=method, target=target, profile=profile_name,
                     use_pt=True, checkpoint=checkpoints[method],
                     setting="full", seed=1))
    results = run_cells(tasks, workers=workers)

    table: dict[str, dict[str, dict[str, float]]] = {}
    for (target, method, use_pt), res in results.items():
        label = f"{method}{' w. PT' if use_pt else ' w/o PT'}"
        table.setdefault(target, {})[label] = res["test"]
    return {"profile": profile_name, "table": table,
            "checkpoints": checkpoints}


def render(results: dict) -> str:
    """Format the results dict as the paper-shaped ASCII table."""
    columns = ["sasrec w/o PT"]
    for method in TRANSFER_METHODS:
        columns += [f"{method} w/o PT", f"{method} w. PT"]
    headers = ["Dataset", "Metric"] + columns + ["Improv."]
    rows = []
    for target, by_label in results["table"].items():
        for metric in _METRICS:
            row = [target, metric]
            values = [by_label[c][metric] for c in columns]
            for v in values:
                row.append(pct(v))
            ours = values[-1]                      # pmmrec w. PT
            best_other = max(values[:-1])
            gain = ((ours - best_other) / best_other * 100.0
                    if best_other > 0 else 0.0)
            row.append(f"{gain:+.2f}%")
            rows.append(row)
    return format_table("Table IV: downstream transfer comparison (%)",
                        headers, rows)
