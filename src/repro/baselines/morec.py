"""MoRec++ baseline — modality encoders + SASRec, no alignment objectives.

MoRec (Yuan et al., SIGIR'23) replaces ID embeddings with a *single*
fine-tuned modality encoder feeding SASRec. The paper upgrades it to
MoRec++ by fusing both text and vision CLS features (a concat-project
fusion) — but, unlike PMMRec, with **no** cross-modal alignment and **no**
denoising objectives. The gap between MoRec++ and PMMRec therefore
measures exactly the contribution of NICL + NID + RCL.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.user_encoder import UserEncoder
from ..data.catalog import SeqDataset, get_world
from ..nn.tensor import Tensor, concat
from ..text import pretrained_text_encoder
from ..vision import pretrained_vision_encoder
from .base import SequentialRecommender

__all__ = ["MoRecPlusPlus"]


class MoRecPlusPlus(SequentialRecommender):
    """End-to-end text+vision encoders with concat fusion and SASRec."""

    def __init__(self, dim: int = 32, encoder_blocks: int = 2,
                 num_blocks: int = 2, num_heads: int = 4,
                 max_seq_len: int = 32, dropout: float = 0.1, seed: int = 0,
                 finetune_top_blocks: int = 2):
        super().__init__(dim)
        rng = np.random.default_rng(seed)
        self.max_seq_len = max_seq_len
        world = get_world()
        self.text_encoder = pretrained_text_encoder(
            world, dim=dim, num_blocks=encoder_blocks, dropout=dropout)
        self.vision_encoder = pretrained_vision_encoder(
            world, dim=dim, num_blocks=encoder_blocks, dropout=dropout)
        self.text_encoder.set_finetune_depth(finetune_top_blocks)
        self.vision_encoder.set_finetune_depth(finetune_top_blocks)
        self.fusion_proj = nn.Linear(2 * dim, dim, rng=rng)
        self.fusion_norm = nn.LayerNorm(dim)
        self.encoder = UserEncoder(dim, num_blocks=num_blocks,
                                   num_heads=num_heads, max_len=max_seq_len,
                                   dropout=dropout, rng=rng)

    def item_representations(self, dataset: SeqDataset,
                             item_ids: np.ndarray) -> Tensor:
        ids = np.asarray(item_ids)
        text_cls, _, _ = self.text_encoder(dataset.text_for(ids))
        vision_cls, _ = self.vision_encoder(dataset.images_for(ids))
        fused = self.fusion_proj(concat([text_cls, vision_cls], axis=-1))
        return self.fusion_norm(fused)

    def sequence_hidden(self, item_reps: Tensor, mask: np.ndarray) -> Tensor:
        return self.encoder(item_reps, mask)
