"""GRU4Rec baseline (Hidasi et al., 2015) — pure ID-based RNN recommender."""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.catalog import SeqDataset
from ..nn.tensor import Tensor
from .base import SequentialRecommender

__all__ = ["GRURec"]


class GRURec(SequentialRecommender):
    """ID embeddings + GRU sequence encoder.

    Like all pure ID-based methods, its item table is tied to one
    dataset's id space and cannot transfer across platforms.
    """

    def __init__(self, num_items: int, dim: int = 32, seed: int = 0):
        super().__init__(dim)
        rng = np.random.default_rng(seed)
        self.item_emb = nn.Embedding(num_items + 1, dim, padding_idx=0,
                                     rng=rng)
        self.gru = nn.GRU(dim, dim, rng=rng)
        self.out_norm = nn.LayerNorm(dim)

    def item_representations(self, dataset: SeqDataset,
                             item_ids: np.ndarray) -> Tensor:
        """ID-embedding lookup (content is ignored)."""
        return self.item_emb(item_ids)

    def sequence_hidden(self, item_reps: Tensor, mask: np.ndarray) -> Tensor:
        """GRU unroll over the item sequence."""
        return self.out_norm(self.gru(item_reps))
