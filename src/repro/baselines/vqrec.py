"""VQRec baseline (Hou et al., WWW'23) — vector-quantized item codes.

VQRec maps each item's frozen text embedding to discrete codes with
product quantization, then represents the item as the sum of learned code
embeddings. The code-embedding table (not the text itself) is what
transfers across domains. Codebooks are fitted with k-means on the source
corpus and reused on targets, mirroring the original's OPQ pipeline.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.user_encoder import UserEncoder
from ..data.catalog import SeqDataset
from ..nn.tensor import Parameter, Tensor
from .base import SequentialRecommender, frozen_text_features

__all__ = ["VQRec", "kmeans", "ProductQuantizer"]


def kmeans(data: np.ndarray, num_clusters: int, rng: np.random.Generator,
           iterations: int = 15) -> np.ndarray:
    """Plain Lloyd's k-means; returns ``(num_clusters, dim)`` centroids."""
    data = np.asarray(data, dtype=np.float64)
    if len(data) < num_clusters:
        # Degenerate corpus: pad with jittered copies so shapes stay fixed.
        reps = int(np.ceil(num_clusters / max(len(data), 1)))
        data = np.concatenate([data] * reps)[:max(num_clusters, len(data))]
        data = data + 1e-3 * rng.normal(size=data.shape)
    centroids = data[rng.choice(len(data), num_clusters, replace=False)]
    for _ in range(iterations):
        dists = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assign = dists.argmin(axis=1)
        for c in range(num_clusters):
            members = data[assign == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
    return centroids


class ProductQuantizer:
    """Split vectors into groups and k-means-quantize each group."""

    def __init__(self, dim: int, num_groups: int = 4, codes_per_group: int = 16,
                 seed: int = 0):
        if dim % num_groups != 0:
            raise ValueError(f"dim={dim} not divisible by groups={num_groups}")
        self.dim = dim
        self.num_groups = num_groups
        self.codes_per_group = codes_per_group
        self.group_dim = dim // num_groups
        self.codebooks: np.ndarray | None = None   # (G, K, group_dim)
        self._seed = seed

    def fit(self, features: np.ndarray) -> np.ndarray:
        """Learn per-group codebooks; returns them ``(G, K, group_dim)``."""
        rng = np.random.default_rng(self._seed)
        books = np.zeros((self.num_groups, self.codes_per_group,
                          self.group_dim))
        for g in range(self.num_groups):
            chunk = features[:, g * self.group_dim:(g + 1) * self.group_dim]
            books[g] = kmeans(chunk, self.codes_per_group, rng)
        self.codebooks = books
        return books

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Assign each vector its nearest code per group, ``(N, G)``."""
        if self.codebooks is None:
            raise RuntimeError("ProductQuantizer.fit must be called first")
        codes = np.zeros((len(features), self.num_groups), dtype=np.int64)
        for g in range(self.num_groups):
            chunk = features[:, g * self.group_dim:(g + 1) * self.group_dim]
            dists = ((chunk[:, None, :]
                      - self.codebooks[g][None, :, :]) ** 2).sum(axis=2)
            codes[:, g] = dists.argmin(axis=1)
        return codes


class VQRec(SequentialRecommender):
    """Discrete text codes -> summed code embeddings -> Transformer."""

    def __init__(self, dim: int = 32, num_groups: int = 4,
                 codes_per_group: int = 16, num_blocks: int = 2,
                 num_heads: int = 4, max_seq_len: int = 32,
                 dropout: float = 0.1, seed: int = 0):
        super().__init__(dim)
        rng = np.random.default_rng(seed)
        self.max_seq_len = max_seq_len
        self.quantizer = ProductQuantizer(dim, num_groups=num_groups,
                                          codes_per_group=codes_per_group,
                                          seed=seed)
        self.code_emb = nn.Embedding(num_groups * codes_per_group, dim,
                                     rng=rng)
        # Codebooks live in the state dict (frozen) so that transferring a
        # pre-trained VQRec carries its quantization space along.
        self.codebooks = Parameter(np.zeros((num_groups, codes_per_group,
                                             dim // num_groups)))
        self.codebooks.requires_grad = False
        self.encoder = UserEncoder(dim, num_blocks=num_blocks,
                                   num_heads=num_heads, max_len=max_seq_len,
                                   dropout=dropout, rng=rng)
        self._code_cache: dict[str, np.ndarray] = {}
        self._fitted = False

    # -- quantization ------------------------------------------------------------

    def fit_codebooks(self, dataset: SeqDataset) -> None:
        """Fit PQ codebooks on a corpus (once, on the source data)."""
        features = frozen_text_features(dataset, dim=self.dim)[1:]
        self.codebooks.data = self.quantizer.fit(features)
        self._fitted = True
        self._code_cache.clear()

    def _codes_for(self, dataset: SeqDataset) -> np.ndarray:
        if not self._fitted:
            if float(np.abs(self.codebooks.data).sum()) > 0:
                # Codebooks arrived via a transferred state dict.
                self.quantizer.codebooks = self.codebooks.data
                self._fitted = True
            else:
                self.fit_codebooks(dataset)
        if dataset.name not in self._code_cache:
            features = frozen_text_features(dataset, dim=self.dim)
            self._code_cache[dataset.name] = self.quantizer.encode(features)
        return self._code_cache[dataset.name]

    # -- recommender interface --------------------------------------------------------

    def item_representations(self, dataset: SeqDataset,
                             item_ids: np.ndarray) -> Tensor:
        codes = self._codes_for(dataset)[np.asarray(item_ids)]   # (N, G)
        offsets = (np.arange(self.quantizer.num_groups)
                   * self.quantizer.codes_per_group)
        return self.code_emb(codes + offsets).sum(axis=-2)

    def sequence_hidden(self, item_reps: Tensor, mask: np.ndarray) -> Tensor:
        return self.encoder(item_reps, mask)

    def load_state_dict(self, state, strict: bool = True) -> None:
        super().load_state_dict(state, strict=strict)
        if "codebooks" in state and float(np.abs(self.codebooks.data).sum()) > 0:
            self.quantizer.codebooks = self.codebooks.data
            self._fitted = True
            self._code_cache.clear()
