"""BERT4Rec baseline (Sun et al., CIKM'19) — bidirectional masked training.

Discussed in the paper's related work as the bidirectional counterpart of
SASRec: a Transformer without the causal mask, trained with the Cloze
(masked item prediction) objective. At inference a mask token is appended
after the history and its hidden state scores the next item.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.losses import batch_structure
from ..data.catalog import SeqDataset
from ..nn.fused import info_nce
from ..nn.tensor import Tensor
from .base import SequentialRecommender

__all__ = ["BERT4Rec"]


class BERT4Rec(SequentialRecommender):
    """ID embeddings + bidirectional Transformer + masked item prediction."""

    #: Inference appends a [MASK] token that is not a catalogue row, so
    #: the shared gather-encode-project kernel cannot reproduce it; eval
    #: and serving must go through score_histories below.
    supports_score_kernel = False

    def __init__(self, num_items: int, dim: int = 32, num_blocks: int = 2,
                 num_heads: int = 4, max_seq_len: int = 33,
                 mask_prob: float = 0.3, dropout: float = 0.1, seed: int = 0):
        super().__init__(dim)
        rng = np.random.default_rng(seed)
        self.max_seq_len = max_seq_len
        self.mask_prob = mask_prob
        self.num_items = num_items
        # One extra embedding row acts as the [MASK] token.
        self.item_emb = nn.Embedding(num_items + 2, dim, padding_idx=0,
                                     rng=rng)
        self.mask_token = num_items + 1
        self.pos_emb = nn.Embedding(max_seq_len, dim, rng=rng)
        self.norm = nn.LayerNorm(dim)
        self.drop = nn.Dropout(dropout)
        self.blocks = nn.ModuleList([
            nn.TransformerBlock(dim, num_heads, dropout=dropout, rng=rng)
            for _ in range(num_blocks)])
        self.final_norm = nn.LayerNorm(dim)
        self._mask_rng = np.random.default_rng(seed + 1)

    # -- encoding ---------------------------------------------------------------

    def item_representations(self, dataset: SeqDataset,
                             item_ids: np.ndarray) -> Tensor:
        return self.item_emb(item_ids)

    def _encode(self, ids: np.ndarray, valid: np.ndarray) -> Tensor:
        x = self.item_emb(ids) + self.pos_emb.prefix(ids.shape[1])
        x = self.drop(self.norm(x))
        mask = nn.padding_mask(valid)          # bidirectional: no causal mask
        for block in self.blocks:
            x = block(x, mask=mask)
        return self.final_norm(x)

    def sequence_hidden(self, item_reps: Tensor, mask: np.ndarray) -> Tensor:
        # Used only by the shared scorer; reps arrive precomputed, so run
        # the blocks directly over them (equivalent to _encode sans lookup).
        x = item_reps + self.pos_emb.prefix(item_reps.shape[1])
        x = self.drop(self.norm(x))
        attn = nn.padding_mask(mask)
        for block in self.blocks:
            x = block(x, mask=attn)
        return self.final_norm(x)

    # -- masked-item training (Cloze) ----------------------------------------------

    def training_loss(self, dataset: SeqDataset, item_ids: np.ndarray,
                      mask: np.ndarray,
                      pretraining: bool = True) -> tuple[Tensor, dict]:
        ids = np.asarray(item_ids).copy()
        valid = np.asarray(mask, dtype=bool)
        unique_ids, inverse, _ = batch_structure(item_ids, mask)

        # Mask a random subset of real positions (at least one per row).
        to_mask = (self._mask_rng.random(ids.shape) < self.mask_prob) & valid
        for row in range(ids.shape[0]):
            if valid[row].any() and not to_mask[row].any():
                choices = np.where(valid[row])[0]
                to_mask[row, self._mask_rng.integers(len(choices))] = True
        targets = inverse[to_mask]
        ids[to_mask] = self.mask_token

        hidden = self._encode(ids, valid)
        rows = np.where(to_mask)
        anchor = hidden[rows]                            # (M, d)
        candidates = self.item_emb(unique_ids)           # (U, d)
        scores = anchor @ candidates.swapaxes(0, 1)
        positive = np.zeros(scores.shape, dtype=bool)
        positive[np.arange(len(targets)), targets] = True
        loss = info_nce(scores, positive)
        return loss, {"cloze": float(loss.data), "total": float(loss.data)}

    # -- inference -----------------------------------------------------------------

    def score_histories(self, dataset: SeqDataset,
                        histories: list[np.ndarray],
                        catalog: np.ndarray | None = None) -> np.ndarray:
        from ..data.batching import pad_sequences
        if catalog is None:
            catalog = self.encode_catalog(dataset)
        # Append the mask token to each history; its hidden state is the
        # next-item query (the BERT4Rec inference trick).
        extended = [np.concatenate([h[-(self.max_seq_len - 1):],
                                    [self.mask_token]])
                    for h in histories]
        batch = pad_sequences(extended)
        was_training = self.training
        self.eval()
        with nn.no_grad():
            hidden = self._encode(batch.item_ids, batch.mask).data
        self.train(was_training)
        last = batch.mask.sum(axis=1) - 1
        query = hidden[np.arange(len(histories)), last]
        return query @ catalog.T
