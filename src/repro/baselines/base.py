"""Shared scaffolding for all baseline recommenders.

Every baseline differs only in how it represents items and encodes
sequences; training (dense auto-regressive prediction with in-batch
negatives) and full-catalogue scoring are identical across methods — and
identical to PMMRec's DAP term — so comparisons isolate the architectural
question the paper studies.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.losses import batch_structure, dap_loss
from ..data.catalog import SeqDataset
from ..nn.ops import take_rows
from ..nn.tensor import Tensor

__all__ = ["SequentialRecommender", "frozen_text_features",
           "frozen_vision_features"]

_FEATURE_CACHE: dict[tuple[str, str, int], np.ndarray] = {}


def frozen_text_features(dataset: SeqDataset, dim: int = 32) -> np.ndarray:
    """Frozen, pre-extracted text features per item, ``(num_items+1, dim)``.

    Stands in for the pre-extracted BERT embeddings UniSRec / VQRec / ZESRec
    consume. Pre-extracted features are famously *non-contextualized and
    anisotropic* (the very pathology UniSRec's parametric whitening targets),
    so we reproduce that: mean-pooled raw token embeddings -- no transformer
    pass, no task adaptation -- plus a dominant common direction. End-to-end
    methods (MoRec++, PMMRec) fine-tune their encoders instead and therefore
    see strictly better features; that asymmetry is the paper's footnote-7
    explanation of why UniSRec/VQRec trail. Cached per dataset.
    """
    key = (dataset.name, "text", dataset.num_items)
    if key not in _FEATURE_CACHE:
        from ..data.catalog import get_world
        from ..text import pretrained_text_encoder
        encoder = pretrained_text_encoder(get_world(), dim=dim)
        encoder.eval()
        table = encoder.token_emb.weight.data
        tokens = dataset.text_tokens                    # (I+1, T)
        mask = (tokens != 0).astype(np.float64)
        denom = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        pooled = (table[tokens] * mask[:, :, None]).sum(axis=1) / denom
        rng = np.random.default_rng(97)
        anisotropy = rng.normal(size=dim)
        anisotropy /= np.linalg.norm(anisotropy)
        out = pooled + 1.5 * np.linalg.norm(pooled, axis=1,
                                            keepdims=True) * anisotropy
        out[0] = 0.0
        _FEATURE_CACHE[key] = out
    return _FEATURE_CACHE[key]


def frozen_vision_features(dataset: SeqDataset, dim: int = 32) -> np.ndarray:
    """Frozen, pre-extracted vision features (same contract as text).

    Mean-pooled raw patch projections of the pre-trained ViT stem -- again
    deliberately shallow compared to the end-to-end encoders.
    """
    key = (dataset.name, "vision", dataset.num_items)
    if key not in _FEATURE_CACHE:
        from ..data.catalog import get_world
        from ..vision import pretrained_vision_encoder
        from ..vision.patches import patchify
        encoder = pretrained_vision_encoder(get_world(), dim=dim)
        encoder.eval()
        out = np.zeros((dataset.num_items + 1, dim))
        with nn.no_grad():
            for start in range(1, dataset.num_items + 1, 256):
                ids = np.arange(start, min(start + 256,
                                           dataset.num_items + 1))
                patches = patchify(dataset.images_for(ids),
                                   encoder.config.patch_size)
                out[ids] = encoder.patch_proj(Tensor(patches)).data.mean(axis=1)
        _FEATURE_CACHE[key] = out
    return _FEATURE_CACHE[key]


class SequentialRecommender(nn.Module):
    """Base class: next-item training plus full-catalogue scoring.

    Subclasses implement :meth:`item_representations` (ids → ``(N, d)``)
    and :meth:`sequence_hidden` (``(B, L, d)`` reps + mask → hiddens).
    """

    def __init__(self, dim: int):
        super().__init__()
        self.dim = dim

    # -- to be provided by subclasses -----------------------------------------

    def item_representations(self, dataset: SeqDataset,
                             item_ids: np.ndarray) -> Tensor:
        raise NotImplementedError

    def sequence_hidden(self, item_reps: Tensor, mask: np.ndarray) -> Tensor:
        raise NotImplementedError

    # -- shared protocol ----------------------------------------------------------

    def training_loss(self, dataset: SeqDataset, item_ids: np.ndarray,
                      mask: np.ndarray,
                      pretraining: bool = True) -> tuple[Tensor, dict]:
        """DAP objective with in-batch negatives (identical to Eq. 5)."""
        unique_ids, inverse, owner = batch_structure(item_ids, mask)
        reps = self.item_representations(dataset, unique_ids)
        mask_f = Tensor._wrap(np.asarray(
            mask, dtype=reps.data.dtype)[:, :, None])
        seq_reps = take_rows(reps, inverse) * mask_f
        hidden = self.sequence_hidden(seq_reps, mask)
        loss = dap_loss(hidden, reps, inverse, mask, owner)
        return loss, {"dap": float(loss.data), "total": float(loss.data)}

    def encode_item_rows(self, dataset: SeqDataset,
                         item_ids: np.ndarray) -> np.ndarray:
        """Inference-mode representations ``(len(item_ids), d)`` by id.

        Row-wise sibling of :meth:`encode_catalog`, used by the streaming
        subsystem to re-encode only new/changed items.
        """
        with nn.inference_mode(self):
            return self.item_representations(dataset,
                                             np.asarray(item_ids)).data

    def encode_catalog(self, dataset: SeqDataset,
                       chunk_size: int = 256) -> np.ndarray:
        """Representation matrix for all items, row 0 = padding.

        The mode toggle happens once per call, not per chunk.
        """
        out = np.zeros((dataset.num_items + 1, self.dim),
                       dtype=self.param_dtype)
        with nn.inference_mode(self):
            for start in range(1, dataset.num_items + 1, chunk_size):
                ids = np.arange(start, min(start + chunk_size,
                                           dataset.num_items + 1))
                out[ids] = self.item_representations(dataset, ids).data
        return out

    def score_histories(self, dataset: SeqDataset,
                        histories: list[np.ndarray],
                        catalog: np.ndarray | None = None) -> np.ndarray:
        """Full-catalogue next-item scores (via the shared eval kernel)."""
        from ..eval.scoring import score_batch
        if catalog is None:
            catalog = self.encode_catalog(dataset)
        return score_batch(self, catalog, histories,
                           max_seq_len=getattr(self, "max_seq_len", 30))
