"""``repro.baselines`` — the paper's eight comparison methods.

Three groups (Sec. IV-A4): pure ID-based (GRURec, NextItNet, SASRec),
ID-based with side features (FDSA, CARCA++), and transferable (UniSRec,
VQRec, MoRec++). All share one training/scoring protocol so results
isolate the representational question.
"""

from __future__ import annotations

from ..data.catalog import SeqDataset
from .base import (SequentialRecommender, frozen_text_features,
                   frozen_vision_features)
from .bert4rec import BERT4Rec
from .carca import CARCAPlusPlus
from .fdsa import FDSA
from .grurec import GRURec
from .markov import FPMC, MostPopular
from .morec import MoRecPlusPlus
from .nextitnet import NextItNet
from .sasrec import SASRec
from .unisrec import MoEAdaptor, UniSRec
from .vqrec import ProductQuantizer, VQRec, kmeans

__all__ = [
    "SequentialRecommender", "frozen_text_features", "frozen_vision_features",
    "GRURec", "NextItNet", "SASRec", "FDSA", "CARCAPlusPlus",
    "BERT4Rec", "FPMC", "MostPopular",
    "UniSRec", "VQRec", "MoRecPlusPlus", "MoEAdaptor", "ProductQuantizer",
    "kmeans", "make_baseline", "BASELINE_NAMES", "TRANSFERABLE_BASELINES",
]

#: Baselines in the order of the paper's Table III columns.
BASELINE_NAMES = ("grurec", "nextitnet", "sasrec", "fdsa", "carca++",
                  "unisrec", "vqrec", "morec++")

#: Methods whose parameters are shareable across datasets (no ID table).
TRANSFERABLE_BASELINES = ("unisrec", "vqrec", "morec++")


def make_baseline(name: str, dataset: SeqDataset, dim: int = 32,
                  seed: int = 0) -> SequentialRecommender:
    """Factory used by the experiment harness.

    ID-based methods are sized to ``dataset``'s item catalogue; the
    transferable ones are dataset-agnostic (``dataset`` is still accepted
    for a uniform signature).
    """
    lowered = name.lower()
    if lowered == "grurec":
        return GRURec(dataset.num_items, dim=dim, seed=seed)
    if lowered == "bert4rec":
        return BERT4Rec(dataset.num_items, dim=dim, seed=seed)
    if lowered == "fpmc":
        return FPMC(dataset.num_items, dim=dim, seed=seed)
    if lowered in ("mostpopular", "pop"):
        return MostPopular(dataset.num_items)
    if lowered == "nextitnet":
        return NextItNet(dataset.num_items, dim=dim, seed=seed)
    if lowered == "sasrec":
        return SASRec(dataset.num_items, dim=dim, seed=seed)
    if lowered == "fdsa":
        return FDSA(dataset.num_items, dim=dim, seed=seed)
    if lowered in ("carca", "carca++"):
        return CARCAPlusPlus(dataset.num_items, dim=dim, seed=seed)
    if lowered == "unisrec":
        return UniSRec(dim=dim, seed=seed)
    if lowered == "vqrec":
        return VQRec(dim=dim, seed=seed)
    if lowered in ("morec", "morec++"):
        return MoRecPlusPlus(dim=dim, seed=seed)
    raise KeyError(f"unknown baseline {name!r}; "
                   f"choose from {BASELINE_NAMES}")
