"""SASRec baseline (Kang & McAuley, ICDM'18) — causal Transformer over IDs.

This is the paper's reference ID-based architecture: PMMRec's user encoder
is "kept the same as SASRec for a fair comparison" (Sec. III-B4), so this
class is literally ID embeddings + :class:`repro.core.UserEncoder`.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.user_encoder import UserEncoder
from ..data.catalog import SeqDataset
from ..nn.tensor import Tensor
from .base import SequentialRecommender

__all__ = ["SASRec"]


class SASRec(SequentialRecommender):
    """ID embeddings + unidirectional Transformer."""

    def __init__(self, num_items: int, dim: int = 32, num_blocks: int = 2,
                 num_heads: int = 4, max_seq_len: int = 32,
                 dropout: float = 0.1, seed: int = 0):
        super().__init__(dim)
        rng = np.random.default_rng(seed)
        self.max_seq_len = max_seq_len
        self.item_emb = nn.Embedding(num_items + 1, dim, padding_idx=0,
                                     rng=rng)
        self.encoder = UserEncoder(dim, num_blocks=num_blocks,
                                   num_heads=num_heads, max_len=max_seq_len,
                                   dropout=dropout, rng=rng)

    def item_representations(self, dataset: SeqDataset,
                             item_ids: np.ndarray) -> Tensor:
        """ID-embedding lookup (content is ignored)."""
        return self.item_emb(item_ids)

    def sequence_hidden(self, item_reps: Tensor, mask: np.ndarray) -> Tensor:
        """Causal Transformer over the item sequence."""
        return self.encoder(item_reps, mask)
