"""CARCA++ baseline — context/attribute-aware recommender, multi-modal.

CARCA (Rashed et al., 2022) attends over items enriched with attribute
features and scores candidates with a cross-attention head. The paper
upgrades it to "CARCA++" by feeding *both* text and image features; we do
the same: item representations are ID embeddings plus projected frozen
text and vision features, encoded by a causal Transformer, with a
bilinear-interaction scoring head standing in for the cross-attention
block (candidates interact with the profile summary multiplicatively).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.user_encoder import UserEncoder
from ..data.catalog import SeqDataset
from ..nn.tensor import Tensor
from .base import (SequentialRecommender, frozen_text_features,
                   frozen_vision_features)

__all__ = ["CARCAPlusPlus"]


class CARCAPlusPlus(SequentialRecommender):
    """ID + text + vision attribute-aware sequential recommender."""

    def __init__(self, num_items: int, dim: int = 32, num_blocks: int = 2,
                 num_heads: int = 4, max_seq_len: int = 32,
                 dropout: float = 0.1, seed: int = 0):
        super().__init__(dim)
        rng = np.random.default_rng(seed)
        self.max_seq_len = max_seq_len
        self.item_emb = nn.Embedding(num_items + 1, dim, padding_idx=0,
                                     rng=rng)
        self.text_proj = nn.Linear(dim, dim, rng=rng)
        self.vision_proj = nn.Linear(dim, dim, rng=rng)
        self.attr_norm = nn.LayerNorm(dim)
        self.encoder = UserEncoder(dim, num_blocks=num_blocks,
                                   num_heads=num_heads, max_len=max_seq_len,
                                   dropout=dropout, rng=rng)
        self.interaction = nn.Linear(dim, dim, rng=rng)
        self._tables: tuple[np.ndarray, np.ndarray] | None = None
        self._table_key: str | None = None

    def _features(self, dataset: SeqDataset) -> tuple[np.ndarray, np.ndarray]:
        if self._table_key != dataset.name:
            # Cast once at cache time so per-batch gathers stay copy-free.
            dtype = self.param_dtype
            self._tables = (
                frozen_text_features(dataset, dim=self.dim)
                .astype(dtype, copy=False),
                frozen_vision_features(dataset, dim=self.dim)
                .astype(dtype, copy=False))
            self._table_key = dataset.name
        return self._tables

    def item_representations(self, dataset: SeqDataset,
                             item_ids: np.ndarray) -> Tensor:
        text_table, vision_table = self._features(dataset)
        ids = np.asarray(item_ids)
        text = self.text_proj(Tensor(text_table[ids]))
        vision = self.vision_proj(Tensor(vision_table[ids]))
        return self.attr_norm(self.item_emb(item_ids) + text + vision)

    def sequence_hidden(self, item_reps: Tensor, mask: np.ndarray) -> Tensor:
        hidden = self.encoder(item_reps, mask)
        # Multiplicative interaction head: candidates scored against
        # W·h instead of raw h (stand-in for CARCA's cross-attention).
        return self.interaction(hidden)
