"""Markov-chain recommenders (FPMC-style) and the popularity reference.

The paper's related work opens with Markov-chain methods (MDP, FPMC,
Fossil) as the pre-deep-learning sequential recommenders. ``FPMC``
factorizes the item-to-item transition matrix; ``MostPopular`` is the
non-personalized floor every evaluation should be compared against.
Neither uses content, so both are ID-bound and non-transferable.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.losses import batch_structure
from ..data.catalog import SeqDataset
from ..nn.fused import info_nce
from ..nn.tensor import Tensor

__all__ = ["FPMC", "MostPopular"]


class FPMC(nn.Module):
    """Factorized personalized Markov chain (Rendle et al., WWW'10).

    Simplified to its sequential core (no user factors, as is standard in
    the leave-one-out comparison setting): the probability of item ``j``
    following item ``i`` is factorized as ``v_i · w_j`` with separate
    "previous" and "next" embedding tables.
    """

    def __init__(self, num_items: int, dim: int = 32, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.dim = dim
        self.prev_emb = nn.Embedding(num_items + 1, dim, padding_idx=0,
                                     rng=rng)
        self.next_emb = nn.Embedding(num_items + 1, dim, padding_idx=0,
                                     rng=rng)

    def training_loss(self, dataset: SeqDataset, item_ids: np.ndarray,
                      mask: np.ndarray,
                      pretraining: bool = True) -> tuple[Tensor, dict]:
        """Softmax transition likelihood with in-batch candidates."""
        ids = np.asarray(item_ids)
        valid = np.asarray(mask, dtype=bool)
        unique_ids, inverse, _ = batch_structure(item_ids, mask)
        has_next = valid[:, :-1] & valid[:, 1:]
        users, steps = np.where(has_next)
        if len(users) == 0:
            return Tensor(0.0), {"total": 0.0}
        prev = self.prev_emb(ids[users, steps])
        candidates = self.next_emb(unique_ids)
        scores = prev @ candidates.swapaxes(0, 1)
        positive = np.zeros(scores.shape, dtype=bool)
        positive[np.arange(len(users)), inverse[users, steps + 1]] = True
        loss = info_nce(scores, positive)
        return loss, {"transition": float(loss.data),
                      "total": float(loss.data)}

    def score_histories(self, dataset: SeqDataset,
                        histories: list[np.ndarray],
                        catalog: np.ndarray | None = None) -> np.ndarray:
        """Score all items from the last history item's transition row."""
        last = np.array([int(h[-1]) for h in histories])
        with nn.no_grad():
            prev = self.prev_emb(last).data
            nxt = self.next_emb.weight.data
        return prev @ nxt.T


class MostPopular:
    """Non-personalized popularity ranking (training-set frequency).

    Not a neural model at all — provided as the floor reference. Exposes
    the same protocol as the learned recommenders.
    """

    def __init__(self, num_items: int):
        self.num_items = num_items
        self._counts = np.zeros(num_items + 1)

    def parameters(self):
        return iter(())

    def training_loss(self, dataset: SeqDataset, item_ids: np.ndarray,
                      mask: np.ndarray, pretraining: bool = True):
        ids = np.asarray(item_ids)[np.asarray(mask, dtype=bool)]
        np.add.at(self._counts, ids, 1)
        return Tensor(0.0), {"total": 0.0}

    def fit_counts(self, sequences: list[np.ndarray]) -> "MostPopular":
        """Count item frequencies over full training sequences."""
        for seq in sequences:
            np.add.at(self._counts, np.asarray(seq), 1)
        return self

    def score_histories(self, dataset: SeqDataset,
                        histories: list[np.ndarray],
                        catalog: np.ndarray | None = None) -> np.ndarray:
        scores = self._counts.copy()
        scores[0] = -np.inf
        return np.tile(scores, (len(histories), 1))
