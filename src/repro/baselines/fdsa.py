"""FDSA baseline (Zhang et al., IJCAI'19) — feature-level self-attention.

FDSA runs two parallel self-attention streams — one over item ID
embeddings, one over item *feature* embeddings (here the frozen text
features) — and concatenates their final states for prediction. It is the
paper's representative of "IDSR with side features": content helps, but
the ID table still blocks transfer.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.user_encoder import UserEncoder
from ..data.catalog import SeqDataset
from ..nn.tensor import Tensor, concat
from .base import SequentialRecommender, frozen_text_features

__all__ = ["FDSA"]


class FDSA(SequentialRecommender):
    """Two-stream (ID + text feature) self-attention recommender."""

    def __init__(self, num_items: int, dim: int = 32, num_blocks: int = 2,
                 num_heads: int = 4, max_seq_len: int = 32,
                 dropout: float = 0.1, seed: int = 0):
        super().__init__(dim)
        rng = np.random.default_rng(seed)
        self.max_seq_len = max_seq_len
        self.item_emb = nn.Embedding(num_items + 1, dim, padding_idx=0,
                                     rng=rng)
        self.feature_proj = nn.Linear(dim, dim, rng=rng)
        self.id_stream = UserEncoder(dim, num_blocks=num_blocks,
                                     num_heads=num_heads, max_len=max_seq_len,
                                     dropout=dropout, rng=rng)
        self.feature_stream = UserEncoder(dim, num_blocks=num_blocks,
                                          num_heads=num_heads,
                                          max_len=max_seq_len,
                                          dropout=dropout, rng=rng)
        self.merge = nn.Linear(2 * dim, dim, rng=rng)
        self._feature_table: np.ndarray | None = None
        self._feature_key: str | None = None

    def _features(self, dataset: SeqDataset) -> np.ndarray:
        if self._feature_key != dataset.name:
            # Cast once at cache time so per-batch gathers stay copy-free.
            self._feature_table = frozen_text_features(dataset, dim=self.dim) \
                .astype(self.param_dtype, copy=False)
            self._feature_key = dataset.name
        return self._feature_table

    def item_representations(self, dataset: SeqDataset,
                             item_ids: np.ndarray) -> Tensor:
        features = Tensor(self._features(dataset)[np.asarray(item_ids)])
        return self.item_emb(item_ids) + self.feature_proj(features)

    def sequence_hidden(self, item_reps: Tensor, mask: np.ndarray) -> Tensor:
        # Both streams see the combined representation; FDSA's key idea —
        # separate attention over ids and features, concatenated — is kept
        # by giving each stream its own attention stack before the merge.
        id_hidden = self.id_stream(item_reps, mask)
        feat_hidden = self.feature_stream(item_reps, mask)
        return self.merge(concat([id_hidden, feat_hidden], axis=-1))
