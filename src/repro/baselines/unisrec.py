"""UniSRec baseline (Hou et al., KDD'22) — universal text representations.

UniSRec consumes *frozen* pre-extracted text embeddings, maps them through
parametric whitening and a mixture-of-experts adaptor, and trains a
Transformer user encoder on top. Only text is used and the text encoder is
never fine-tuned — the two design choices the paper identifies as the
reason UniSRec underperforms in complex multi-modal scenarios (footnote 7).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.user_encoder import UserEncoder
from ..data.catalog import SeqDataset
from ..nn.ops import softmax
from ..nn.tensor import Tensor, stack
from .base import SequentialRecommender, frozen_text_features

__all__ = ["UniSRec", "MoEAdaptor"]


class MoEAdaptor(nn.Module):
    """Mixture of parametric-whitening experts (UniSRec Eq. 5-7).

    Each expert is an affine map (a learned whitening); a softmax gate over
    the input mixes expert outputs.
    """

    def __init__(self, dim: int, num_experts: int = 4,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_experts = num_experts
        self.experts = nn.ModuleList([nn.Linear(dim, dim, rng=rng)
                                      for _ in range(num_experts)])
        self.gate = nn.Linear(dim, num_experts, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Gate-weighted mixture of per-expert whitening maps."""
        weights = softmax(self.gate(x), axis=-1)          # (N, E)
        outputs = stack([expert(x) for expert in self.experts], axis=1)
        return (outputs * weights.reshape(weights.shape[0],
                                          self.num_experts, 1)).sum(axis=1)


class UniSRec(SequentialRecommender):
    """Frozen text embeddings -> whitening MoE -> Transformer."""

    def __init__(self, dim: int = 32, num_experts: int = 4,
                 num_blocks: int = 2, num_heads: int = 4,
                 max_seq_len: int = 32, dropout: float = 0.1, seed: int = 0):
        super().__init__(dim)
        rng = np.random.default_rng(seed)
        self.max_seq_len = max_seq_len
        self.adaptor = MoEAdaptor(dim, num_experts=num_experts, rng=rng)
        self.encoder = UserEncoder(dim, num_blocks=num_blocks,
                                   num_heads=num_heads, max_len=max_seq_len,
                                   dropout=dropout, rng=rng)

    def item_representations(self, dataset: SeqDataset,
                             item_ids: np.ndarray) -> Tensor:
        """Whitened mixture-of-experts map of frozen text features."""
        features = frozen_text_features(dataset, dim=self.dim)
        return self.adaptor(Tensor(features[np.asarray(item_ids)],
                                   dtype=self.param_dtype))

    def sequence_hidden(self, item_reps: Tensor, mask: np.ndarray) -> Tensor:
        """Causal Transformer over the adapted item features."""
        return self.encoder(item_reps, mask)
