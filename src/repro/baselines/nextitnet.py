"""NextItNet baseline (Yuan et al., WSDM'19) — dilated causal CNN."""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.catalog import SeqDataset
from ..nn.tensor import Tensor
from .base import SequentialRecommender

__all__ = ["NextItNet"]


class NextItNet(SequentialRecommender):
    """ID embeddings + stacked dilated causal residual blocks.

    Dilations double per block (1, 2, 4, …) so the receptive field grows
    exponentially while staying strictly causal.
    """

    def __init__(self, num_items: int, dim: int = 32, num_blocks: int = 2,
                 kernel_size: int = 3, seed: int = 0):
        super().__init__(dim)
        rng = np.random.default_rng(seed)
        self.item_emb = nn.Embedding(num_items + 1, dim, padding_idx=0,
                                     rng=rng)
        self.blocks = nn.ModuleList([
            nn.NextItNetResidualBlock(dim, kernel_size=kernel_size,
                                      dilation=2 ** i, rng=rng)
            for i in range(num_blocks)])
        self.out_norm = nn.LayerNorm(dim)

    def item_representations(self, dataset: SeqDataset,
                             item_ids: np.ndarray) -> Tensor:
        return self.item_emb(item_ids)

    def sequence_hidden(self, item_reps: Tensor, mask: np.ndarray) -> Tensor:
        x = item_reps
        for block in self.blocks:
            x = block(x)
        return self.out_norm(x)
