"""Ranking metrics: HR@k and NDCG@k (paper Sec. IV-A2).

The paper ranks over the *whole* catalogue (it explicitly avoids sampled
metrics, citing Krichene & Rendle / Li et al.), so metrics here are
computed from exact full-catalogue ranks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rank_of_target", "hit_ratio", "ndcg", "metrics_from_ranks",
           "DEFAULT_KS"]

DEFAULT_KS = (10, 20, 50)


def rank_of_target(scores: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """1-based rank of each row's target item under full-catalogue scoring.

    ``scores`` is ``(N, num_items+1)`` with column 0 the padding item
    (always excluded). Ties are broken pessimistically: equal-scored items
    count as ranked above the target, making the metric conservative.
    """
    scores = np.asarray(scores, dtype=np.float64)
    targets = np.asarray(targets)
    rows = np.arange(scores.shape[0])
    target_scores = scores[rows, targets]
    comparable = scores[:, 1:]  # drop the padding column
    higher = (comparable > target_scores[:, None]).sum(axis=1)
    ties = (comparable == target_scores[:, None]).sum(axis=1)
    # The target itself is one of the ties; other ties rank above it.
    return higher + ties


def hit_ratio(ranks: np.ndarray, k: int) -> float:
    """Fraction of targets ranked within the top ``k``."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    return float((ranks <= k).mean())


def ndcg(ranks: np.ndarray, k: int) -> float:
    """Normalized DCG@k with a single relevant item per example.

    With one relevant target, ideal DCG is 1 and the per-example gain is
    ``1 / log2(rank + 1)`` when the target is inside the top ``k``.
    """
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        return 0.0
    gains = np.where(ranks <= k, 1.0 / np.log2(ranks + 1.0), 0.0)
    return float(gains.mean())


def metrics_from_ranks(ranks: np.ndarray,
                       ks: tuple[int, ...] = DEFAULT_KS) -> dict[str, float]:
    """All HR@k / NDCG@k values as a flat dict keyed like ``"hr@10"``."""
    out: dict[str, float] = {}
    for k in ks:
        out[f"hr@{k}"] = hit_ratio(ranks, k)
        out[f"ndcg@{k}"] = ndcg(ranks, k)
    return out
