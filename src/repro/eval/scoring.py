"""The batch-scoring kernel shared by offline eval and online serving.

Every kernel-capable model in the repo (PMMRec and all sequential
baselines) scores a batch of histories the same way: gather the item
representations for the padded history out of a precomputed catalogue
matrix, run the user encoder once under ``no_grad``, and project the
final hidden state against the whole catalogue. This module holds that
one hot path so ``evaluate_model`` (offline tables) and the
``repro.serve`` stack (online requests) stay byte-for-byte identical —
and so the per-chunk overhead lives in exactly one place: a single
gather (multiplied by the mask in place, no second allocation) and a
single allocation-free ``Tensor._wrap`` per batch.

It lives in ``repro.eval`` (below ``core``/``baselines``/``serve`` in
the dependency graph, needing only ``data.batching`` + ``nn.tensor``)
and is re-exported by ``repro.serve.scoring``.

The user-encoder forward this kernel runs inherits the fused one-node
attention/LayerNorm kernels (``repro.nn.fused``) automatically, so
``bench-serve`` and ANN re-ranking speed up with no change here; the
fused forward is bit-for-bit identical to the unfused composition
(``REPRO_FUSED=0``), so ranks — and the kernel-parity goldens in
``tests/eval/test_scoring_parity.py`` — are unchanged either way.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.batching import pad_sequences
from ..nn.tensor import Tensor, no_grad

__all__ = ["supports_kernel", "model_max_len", "encode_queries",
           "score_batch", "batch_scorer"]

ScoreFn = Callable[[list[np.ndarray]], np.ndarray]


def supports_kernel(model) -> bool:
    """True when ``model`` can be scored through the shared kernel.

    Requires the catalogue protocol (``encode_catalog`` +
    ``sequence_hidden``) and an inference scheme the kernel can
    reproduce: models whose ``score_histories`` does more than
    gather-encode-project set ``supports_score_kernel = False``
    (BERT4Rec appends a mask token outside the catalogue) and take the
    fallback path, as do heuristic baselines like ``FPMC`` /
    ``MostPopular`` that only expose ``score_histories``.
    """
    return (hasattr(model, "encode_catalog")
            and hasattr(model, "sequence_hidden")
            and getattr(model, "supports_score_kernel", True))


def model_max_len(model) -> int:
    """History truncation length for a model (config, attribute or 30)."""
    config = getattr(model, "config", None)
    if config is not None and hasattr(config, "max_seq_len"):
        return int(config.max_seq_len)
    return int(getattr(model, "max_seq_len", 30))


def encode_queries(model, catalog: np.ndarray,
                   histories: list[np.ndarray],
                   max_seq_len: int | None = None) -> np.ndarray:
    """User query vectors ``(N, d)``: the encoder's final hidden states.

    This is the front half of :func:`score_batch` — pad, gather from the
    catalogue matrix, run the user encoder under ``no_grad``, pick each
    sequence's last real position. A query vector's dot product with a
    catalogue row *is* that item's score, which is what lets approximate
    retrieval (``repro.serve.ann``) shortlist candidates without the
    full-catalogue matmul.
    """
    if max_seq_len is None:
        max_seq_len = model_max_len(model)
    batch = pad_sequences(histories, max_len=max_seq_len)
    was_training = bool(getattr(model, "training", False))
    if was_training:
        model.eval()
    try:
        with no_grad():
            gathered = catalog[batch.item_ids]      # fancy index: fresh array
            gathered *= batch.mask[:, :, None]       # zero padding in place
            hidden = model.sequence_hidden(Tensor._wrap(gathered),
                                           batch.mask).data
    finally:
        if was_training:
            model.train(True)
    last = batch.mask.sum(axis=1) - 1
    return hidden[np.arange(hidden.shape[0]), last]


def score_batch(model, catalog: np.ndarray,
                histories: list[np.ndarray],
                max_seq_len: int | None = None) -> np.ndarray:
    """Full-catalogue scores ``(N, num_items+1)`` for a batch of histories.

    ``catalog`` is an ``encode_catalog`` matrix (row 0 = padding; callers
    must ignore column 0 of the result). The model is flipped to eval
    mode only if it is currently training, so steady-state callers
    (evaluation loops, the serving path) never pay the recursive
    train/eval walk per batch.
    """
    return encode_queries(model, catalog, histories,
                          max_seq_len=max_seq_len) @ catalog.T


def batch_scorer(model, dataset, catalog: np.ndarray | None = None) -> ScoreFn:
    """A ``histories -> scores`` closure over the shared kernel.

    Encodes the catalogue once up front for kernel-capable models;
    anything else falls back to the model's own ``score_histories``
    (still valid for evaluation, just without the shared hot path) —
    with the catalogue still precomputed once when the model offers
    ``encode_catalog``.
    """
    if not supports_kernel(model):
        if hasattr(model, "encode_catalog"):
            fallback_catalog = (catalog if catalog is not None
                                else model.encode_catalog(dataset))
            return lambda histories: model.score_histories(
                dataset, histories, catalog=fallback_catalog)
        return lambda histories: model.score_histories(dataset, histories)
    if catalog is None:
        catalog = model.encode_catalog(dataset)
    max_len = model_max_len(model)

    def scorer(histories: list[np.ndarray]) -> np.ndarray:
        return score_batch(model, catalog, histories, max_seq_len=max_len)

    return scorer
