"""``repro.eval`` — full-catalogue ranking metrics and evaluation loops."""

from .evaluator import evaluate_model, evaluate_ranking
from .metrics import (DEFAULT_KS, hit_ratio, metrics_from_ranks, ndcg,
                      rank_of_target)
from .scoring import batch_scorer, model_max_len, score_batch, supports_kernel

__all__ = ["evaluate_model", "evaluate_ranking", "hit_ratio", "ndcg",
           "rank_of_target", "metrics_from_ranks", "DEFAULT_KS",
           "score_batch", "batch_scorer", "supports_kernel",
           "model_max_len"]
