"""Full-catalogue ranking evaluation over leave-one-out examples."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..data.splits import EvalExample
from ..nn.tensor import no_grad
from .metrics import DEFAULT_KS, metrics_from_ranks, rank_of_target

__all__ = ["evaluate_ranking", "evaluate_model"]

ScoreFn = Callable[[list[np.ndarray]], np.ndarray]


def evaluate_ranking(score_fn: ScoreFn, examples: Sequence[EvalExample],
                     ks: tuple[int, ...] = DEFAULT_KS,
                     batch_size: int = 128) -> dict[str, float]:
    """Rank every example's target with ``score_fn`` and aggregate metrics.

    ``score_fn`` maps a list of histories to an ``(N, num_items+1)`` score
    matrix (column 0 = padding, ignored).
    """
    if not examples:
        # Emit every metric family metrics_from_ranks produces (not a
        # hardcoded subset) so callers never branch on result shape.
        return metrics_from_ranks(np.empty(0, dtype=np.int64), ks=ks)
    all_ranks: list[np.ndarray] = []
    # Score under no_grad so every model goes through the substrate's
    # closure-free inference fast path, whether or not it guards itself.
    with no_grad():
        for start in range(0, len(examples), batch_size):
            chunk = examples[start:start + batch_size]
            scores = score_fn([ex.history for ex in chunk])
            targets = np.array([ex.target for ex in chunk])
            all_ranks.append(rank_of_target(scores, targets))
    return metrics_from_ranks(np.concatenate(all_ranks), ks=ks)


def evaluate_model(model, dataset, examples: Sequence[EvalExample],
                   ks: tuple[int, ...] = DEFAULT_KS,
                   batch_size: int = 128) -> dict[str, float]:
    """Evaluate any model exposing ``score_histories(dataset, histories)``.

    Kernel-capable models (the catalogue protocol) score through the
    shared kernel (:mod:`repro.eval.scoring`) — the catalogue is encoded
    once and each chunk is a single gather + user-encoder pass + matmul,
    with no per-chunk train/eval toggling or redundant Tensor wrapping —
    so offline eval and online serving exercise one hot path. Anything
    else falls back to its own ``score_histories``.
    """
    from .scoring import batch_scorer
    score_fn = batch_scorer(model, dataset)
    was_training = bool(getattr(model, "training", False))
    if was_training:
        model.eval()
    try:
        return evaluate_ranking(score_fn, examples, ks=ks,
                                batch_size=batch_size)
    finally:
        if was_training:
            model.train(True)
