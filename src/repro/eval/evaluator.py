"""Full-catalogue ranking evaluation over leave-one-out examples."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..data.splits import EvalExample
from ..nn.tensor import no_grad
from .metrics import DEFAULT_KS, metrics_from_ranks, rank_of_target

__all__ = ["evaluate_ranking", "evaluate_model"]

ScoreFn = Callable[[list[np.ndarray]], np.ndarray]


def evaluate_ranking(score_fn: ScoreFn, examples: Sequence[EvalExample],
                     ks: tuple[int, ...] = DEFAULT_KS,
                     batch_size: int = 128) -> dict[str, float]:
    """Rank every example's target with ``score_fn`` and aggregate metrics.

    ``score_fn`` maps a list of histories to an ``(N, num_items+1)`` score
    matrix (column 0 = padding, ignored).
    """
    if not examples:
        return {f"{m}@{k}": 0.0 for k in ks for m in ("hr", "ndcg")}
    all_ranks: list[np.ndarray] = []
    # Score under no_grad so every model goes through the substrate's
    # closure-free inference fast path, whether or not it guards itself.
    with no_grad():
        for start in range(0, len(examples), batch_size):
            chunk = examples[start:start + batch_size]
            scores = score_fn([ex.history for ex in chunk])
            targets = np.array([ex.target for ex in chunk])
            all_ranks.append(rank_of_target(scores, targets))
    return metrics_from_ranks(np.concatenate(all_ranks), ks=ks)


def evaluate_model(model, dataset, examples: Sequence[EvalExample],
                   ks: tuple[int, ...] = DEFAULT_KS,
                   batch_size: int = 128) -> dict[str, float]:
    """Evaluate any model exposing ``score_histories(dataset, histories)``.

    The item catalogue is encoded once (when the model supports it) and
    reused across batches.
    """
    catalog = None
    if hasattr(model, "encode_catalog"):
        catalog = model.encode_catalog(dataset)

    def score_fn(histories: list[np.ndarray]) -> np.ndarray:
        if catalog is not None:
            return model.score_histories(dataset, histories, catalog=catalog)
        return model.score_histories(dataset, histories)

    return evaluate_ranking(score_fn, examples, ks=ks, batch_size=batch_size)
