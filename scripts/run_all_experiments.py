"""Run every table/figure of the reproduction and print the results.

Usage::

    python scripts/run_all_experiments.py [profile]

Results are cached under .repro_cache/, so interrupted runs resume and
re-runs are instant. This is the same code path the benchmark suite uses.
"""

import os
import sys
import time
import traceback

# Keep BLAS single-threaded: parallelism comes from the process pool.
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")
# Experiments run at float32 (the PR-1 fast path; deltas vs float64 are
# recorded in results/float32_notes.md). REPRO_DTYPE=float64 restores the
# original full-precision harness; the result cache keys on the dtype.
os.environ.setdefault("REPRO_DTYPE", "float32")

from repro.experiments import ALL_TABLES


def main() -> int:
    profile = sys.argv[1] if len(sys.argv) > 1 else None
    print(f"[experiment dtype: {os.environ['REPRO_DTYPE']}]", flush=True)
    failures = 0
    for name, module in ALL_TABLES.items():
        start = time.time()
        try:
            results = module.run(profile=profile)
            print(module.render(results))
            print(f"[{name} done in {time.time() - start:.1f}s]\n", flush=True)
        except Exception:
            failures += 1
            print(f"[{name} FAILED after {time.time() - start:.1f}s]")
            traceback.print_exc()
            print(flush=True)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
