"""Verify the paper-shape assertions against the cached experiment results.

Runs the same aggregate checks the benchmark suite asserts, but prints
every quantity instead of stopping at the first failure — the quick way
to audit a finished `run_all_experiments.py` pass.
"""

import numpy as np

from repro.data import downstream_names, source_names
from repro.experiments import (figure3_convergence, table3_source,
                               table4_transfer, table5_versatility,
                               table6_single_source, table7_coldstart,
                               table8_ablation)


def check(label: str, condition: bool, detail: str = "") -> None:
    print(f"  {'PASS' if condition else 'FAIL'}  {label} {detail}")


def main() -> None:
    print("Table III")
    t3 = table3_source.run()["table"]

    def mean3(method, metric="hr@10"):
        return float(np.mean([t3[d][method][metric] for d in source_names()]))

    pmm, sas = mean3("pmmrec"), mean3("sasrec")
    best = max(mean3(m) for m in table3_source.METHODS if m != "pmmrec")
    carca, morec = mean3("carca++"), mean3("morec++")
    uni, vq = mean3("unisrec"), mean3("vqrec")
    check("pmmrec >= 0.90*best", pmm >= 0.90 * best,
          f"({pmm:.3f} vs {best:.3f})")
    check("pmmrec >= 0.95*sasrec", pmm >= 0.95 * sas,
          f"({pmm:.3f} vs {sas:.3f})")
    check("pmmrec >= 0.93*carca,morec",
          pmm >= 0.93 * carca and pmm >= 0.93 * morec,
          f"(carca {carca:.3f} morec {morec:.3f})")
    check("unisrec < sasrec", uni < sas, f"({uni:.3f})")
    check("vqrec < pmmrec", vq < pmm, f"({vq:.3f})")

    print("Table IV")
    t4 = table4_transfer.run()["table"]

    def mean4(label, metric="hr@10"):
        return float(np.mean([t4[d][label][metric]
                              for d in downstream_names()]))

    pmm_pt, pmm_s = mean4("pmmrec w. PT"), mean4("pmmrec w/o PT")
    morec_pt = mean4("morec++ w. PT")
    uni_pt, vq_pt = mean4("unisrec w. PT"), mean4("vqrec w. PT")
    sas4 = mean4("sasrec w/o PT")
    check("pmm_pt > pmm_scratch", pmm_pt > pmm_s,
          f"({pmm_pt:.3f} vs {pmm_s:.3f})")
    for lab, val in (("sasrec", sas4), ("unisrec_pt", uni_pt),
                     ("vqrec_pt", vq_pt), ("morec_pt", morec_pt)):
        check(f"pmm_pt > {lab}", pmm_pt > val, f"({val:.3f})")
    wins = sum(t4[d]["pmmrec w. PT"]["hr@10"]
               >= max(v["hr@10"] for k, v in t4[d].items()
                      if k != "pmmrec w. PT") * 0.999
               for d in downstream_names())
    check("pmm_pt wins >= 6 targets", wins >= 6, f"({wins}/10)")

    print("Table V")
    t5 = table5_versatility.run()["table"]

    def mean5(label):
        return float(np.mean([t5[d][label]["hr@10"]
                              for d in downstream_names()]))

    full, item, user = mean5("M w. PT"), mean5("M w. PT-I"), mean5("M w. PT-U")
    scratch = mean5("M w/o PT")
    tpt, vpt = mean5("T w. PT"), mean5("V w. PT")
    check("full >= item >= user", full >= item and item > user,
          f"({full:.3f} {item:.3f} {user:.3f})")
    check("full > scratch", full > scratch, f"({scratch:.3f})")
    check("single-modality competitive", min(tpt, vpt) > 0.55 * full,
          f"(T {tpt:.3f} V {vpt:.3f})")

    print("Table VI")
    t6 = table6_single_source.run()["table"]
    useful = sum(
        max(t6[t][s]["hr@10"] for s in source_names())
        >= 0.98 * t6[t]["scratch"]["hr@10"]
        for t in downstream_names())
    check("best source >= scratch on >= 7", useful >= 7, f"({useful}/10)")
    hm_wins = sum(t6[t]["hm"]["hr@10"]
                  >= 0.95 * max(t6[t][s]["hr@10"] for s in source_names())
                  for t in downstream_names())
    check("hm source reliable donor >= 6", hm_wins >= 6, f"({hm_wins}/10)")
    simple = [t for t in downstream_names()
              if t.startswith(("hm", "amazon"))]
    gain = np.mean([max(t6[t]["bili"]["hr@10"], t6[t]["kwai"]["hr@10"])
                    - t6[t]["scratch"]["hr@10"] for t in simple])
    check("complex->simple gain > -0.02", gain > -0.02, f"({gain:+.3f})")

    print("Table VII")
    t7 = table7_coldstart.run()["table"]

    def mean7(method):
        return float(np.mean([t7[d][method]["hr@10"]
                              for d in source_names()]))

    sas7, text7 = mean7("sasrec"), mean7("pmmrec-text")
    vis7, full7 = mean7("pmmrec-vision"), mean7("pmmrec")
    for label, val in (("full", full7), ("text", text7), ("vision", vis7)):
        check(f"{label} > 0.5x sasrec (no collapse possible at this "
              f"scale, see EXPERIMENTS.md)", val > 0.5 * sas7,
              f"({val:.4f} vs {sas7:.4f})")
    check("text >= 0.95x vision", text7 >= 0.95 * vis7,
          f"({text7:.4f} vs {vis7:.4f})")

    print("Table VIII")
    t8 = table8_ablation.run()["table"]

    def mean8(label):
        return float(np.mean([t8[d][label]["ndcg@10"]
                              for d in table8_ablation.DATASETS]))

    full8 = mean8("PMMRec")
    worst = min(mean8(l) for l in table8_ablation.VARIANTS if l != "PMMRec")
    top = max(mean8(l) for l in table8_ablation.VARIANTS if l != "PMMRec")
    check("no ablation beats full by >6%", top <= 1.06 * full8,
          f"(full {full8:.3f} top-ablation {top:.3f})")
    check("full > weakest ablation", full8 > worst, f"(worst {worst:.3f})")

    print("Figure 3")
    f3 = figure3_convergence.run()["curves"]
    targets = downstream_names()
    pt_start = np.mean([f3[t]["w. PT"][0][1] for t in targets])
    s_start = np.mean([f3[t]["w/o PT"][0][1] for t in targets])
    check("PT epoch-1 > 1.5x scratch", pt_start > 1.5 * max(s_start, 1e-4),
          f"({pt_start:.3f} vs {s_start:.3f})")

    def best_ep(t, lab):
        c = f3[t][lab]
        vals = [v for _, v in c]
        return c[vals.index(max(vals))][0]

    pt_ep = np.mean([best_ep(t, "w. PT") for t in targets])
    s_ep = np.mean([best_ep(t, "w/o PT") for t in targets])
    check("PT best-epoch < scratch", pt_ep < s_ep,
          f"({pt_ep:.1f} vs {s_ep:.1f})")
    item_b = np.mean([max(v for _, v in f3[t]["w. PT-I"]) for t in targets])
    user_b = np.mean([max(v for _, v in f3[t]["w. PT-U"]) for t in targets])
    full_b = np.mean([max(v for _, v in f3[t]["w. PT"]) for t in targets])
    check("PT-I > PT-U", item_b > user_b, f"({item_b:.3f} vs {user_b:.3f})")
    check("PT-I > 0.8x full", item_b > 0.8 * full_b, f"(full {full_b:.3f})")


if __name__ == "__main__":
    main()
