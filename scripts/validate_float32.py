"""Re-validate experiment metrics at float32 vs float64 (smoke scale).

Runs representative experiment cells at both precisions with identical
seeds and prints the metric deltas; the summary is recorded in
``results/float32_notes.md``. Usage::

    PYTHONPATH=src python scripts/validate_float32.py [profile]
"""

import os
import sys
import time

os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ["REPRO_FORCE"] = "1"          # never read stale cache entries

from repro.experiments import cells, runner

CASES = [
    ("sasrec", "kwai_food"),          # ID-based reference architecture
    ("morec++", "kwai_food"),         # modality-based transferable baseline
    ("pmmrec", "kwai_food"),          # the paper model, full multi-task loss
]


def main() -> int:
    profile = sys.argv[1] if len(sys.argv) > 1 else "smoke"
    rows = []
    for method, dataset in CASES:
        per_dtype = {}
        for dtype in ("float64", "float32"):
            # Toggle precision in-process: the frozen constant (cache
            # key) and the training budgets must move together.
            runner.EXPERIMENT_DTYPE = dtype
            for budget in (cells.SCRATCH, cells.PRETRAIN, cells.FINETUNE):
                budget["dtype"] = dtype
            start = time.time()
            out = cells.source_performance(method, dataset, profile=profile,
                                           seed=1, with_cold=False)
            per_dtype[dtype] = {"hr@10": out["test"]["hr@10"],
                                "ndcg@10": out["test"]["ndcg@10"],
                                "best_val": out["best_val"],
                                "epochs": out["epochs"],
                                "seconds": time.time() - start}
        rows.append((method, dataset, per_dtype))
        f64, f32 = per_dtype["float64"], per_dtype["float32"]
        print(f"{method:>10} on {dataset} ({profile}):")
        for metric in ("hr@10", "ndcg@10", "best_val"):
            delta = f32[metric] - f64[metric]
            print(f"    {metric:>8}: f64={f64[metric]:.4f} "
                  f"f32={f32[metric]:.4f} delta={delta:+.4f}")
        print(f"    epochs: f64={f64['epochs']} f32={f32['epochs']}   "
              f"wall: f64={f64['seconds']:.1f}s f32={f32['seconds']:.1f}s "
              f"({f64['seconds'] / max(f32['seconds'], 1e-9):.2f}x)",
              flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
