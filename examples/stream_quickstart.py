"""Online continual learning: ingest events, fine-tune, hot-swap, serve.

Walks the whole ``repro.stream`` loop at ``smoke`` scale in seconds::

    python examples/stream_quickstart.py

1. load a modality-based scenario and serve a first request,
2. ingest interaction events *and a cold item that exists only as
   modality features* (the paper's transferability claim, live),
3. run incremental fine-tune steps on the shadow model,
4. hot-swap the new generation in — and watch the same request now be
   answered by the new index version, with the cold item servable,
5. grow the catalogue again without training and see the partial
   ("catalog") swap re-encode only the new item.

See ``docs/streaming.md`` for the architecture and failure modes.
"""

import numpy as np

from repro.serve import ModelRegistry, RecommendationService
from repro.stream import (StreamConfig, StreamManager,
                          synthetic_cold_items, synthetic_interactions)


def main() -> None:
    # -- 1. a streaming-capable scenario -----------------------------------
    registry = ModelRegistry(profile="smoke", dtype="float32")
    scenario = registry.add("kwai_food:pmmrec-text", seed=0)
    service = RecommendationService(registry)
    # start=False: this walkthrough drives the worker synchronously so
    # each step is visible; `repro stream` runs it as a background thread.
    manager = StreamManager(service,
                            StreamConfig(batch_size=4, steps_per_swap=4),
                            start=False)
    service.attach_stream(manager)
    worker = manager.worker("kwai_food", "pmmrec-text")

    history = [int(i) for i in scenario.dataset.split.test[0].history]
    before = service.recommend("kwai_food", "pmmrec-text", history, k=5)
    print(f"generation v{before['index_version']}: "
          f"top-5 {before['items']}")

    # -- 2. events: clicks + one cold item ---------------------------------
    rng = np.random.default_rng(0)
    events = synthetic_interactions(scenario.dataset, 10, rng)
    cold_events, _ = synthetic_cold_items(scenario.dataset, 1, rng)
    receipt = service.ingest_events("kwai_food", "pmmrec-text",
                                    events + cold_events)
    cold_id = receipt["cold_item_ids"][0]
    print(f"\ningested {receipt['accepted']} events "
          f"({receipt['cold_items']} cold item -> id {cold_id}, "
          f"replay buffer {receipt['buffer_size']})")

    # -- 3. incremental fine-tuning on the shadow --------------------------
    steps = worker.run_steps(4)
    stats = worker.stats_json()
    print(f"fine-tuned shadow: {steps} steps, "
          f"last loss {stats['last_loss']:.4f} "
          f"(serving weights untouched)")

    # -- 4. the atomic hot swap --------------------------------------------
    report = worker.swap()
    print(f"\nhot swap: kind={report.kind} -> v{report.version} "
          f"({report.steps} steps folded in, {report.new_items} new item, "
          f"{report.reencoded_items} rows re-encoded, "
          f"{report.latency_ms:.1f} ms)")
    after = service.recommend("kwai_food", "pmmrec-text",
                              history + [cold_id], k=5)
    print(f"generation v{after['index_version']}: top-5 {after['items']} "
          f"(history now includes the cold item)")

    # -- 5. catalogue growth without retraining: the partial swap ----------
    more_cold, _ = synthetic_cold_items(scenario.dataset, 2, rng)
    service.ingest_events("kwai_food", "pmmrec-text", more_cold)
    partial = worker.swap()
    print(f"\npartial swap: kind={partial.kind} -> v{partial.version} "
          f"(only {partial.reencoded_items} of "
          f"{worker.data.num_items} rows re-encoded)")

    stream_stats = service.stats()["stream"]["kwai_food:pmmrec-text"]
    print(f"\nstream stats: {stream_stats['events_total']} events, "
          f"{stream_stats['steps']} steps, {stream_stats['swaps']} swaps, "
          f"catalogue {stream_stats['published_items']} items "
          f"(swap p99 {stream_stats['swap_p99_ms']:.1f} ms)")
    service.close()


if __name__ == "__main__":
    main()
