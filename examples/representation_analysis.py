"""Why PMMRec transfers: representation diagnostics.

Opens the model up with `repro.analysis`: measures (1) how NICL training
changes cross-modal alignment, (2) how much of the world's ground-truth
semantics the item representations decode (linear probe R²), and (3)
whether recommendations collapse onto popular items.

Run with::

    python examples/representation_analysis.py
"""

import numpy as np

from repro import PMMRec, PMMRecConfig, Trainer, TrainConfig, build_dataset
from repro.analysis import (alignment_score, coverage_at_k,
                            item_frequencies, latent_probe_r2, modality_gap,
                            popularity_correlation, rsa_correlation)
import repro.nn as nn


def modality_features(model, dataset):
    ids = np.arange(1, dataset.num_items + 1)
    model.eval()
    with nn.no_grad():
        enc = model.encode_items(dataset, ids)
    model.train()
    return enc.text_cls.data, enc.vision_cls.data, enc.sequence.data


def main() -> None:
    dataset = build_dataset("bili", profile="smoke")
    model = PMMRec(PMMRecConfig(seed=0))

    before_t, before_v, before_e = modality_features(model, dataset)
    print("before training:")
    print("  cross-modal alignment:", {k: round(v, 3) for k, v in
                                       alignment_score(before_t,
                                                       before_v).items()})
    print(f"  modality gap: {modality_gap(before_t, before_v):.3f}")

    Trainer(model, dataset, TrainConfig(epochs=10, batch_size=16,
                                        patience=10),
            pretraining=True).fit()

    after_t, after_v, after_e = modality_features(model, dataset)
    print("\nafter multi-task training (incl. NICL):")
    print("  cross-modal alignment:", {k: round(v, 3) for k, v in
                                       alignment_score(after_t,
                                                       after_v).items()})
    print(f"  modality gap: {modality_gap(after_t, after_v):.3f}")

    latents = dataset.item_latents[1:]
    print("\nhow much world semantics do the representations decode?")
    print(f"  fused-rep linear probe R²: "
          f"{latent_probe_r2(after_e, latents):.3f} "
          f"(untrained: {latent_probe_r2(before_e, latents):.3f})")
    print(f"  fused-rep RSA vs latents:  "
          f"{rsa_correlation(after_e, latents):.3f}")

    histories = [ex.history for ex in dataset.split.test]
    scores = model.score_histories(dataset, histories)
    freq = item_frequencies(dataset.split.train, dataset.num_items)
    print("\nrecommendation diagnostics:")
    print(f"  popularity correlation: "
          f"{popularity_correlation(scores, freq):.3f}")
    print(f"  catalogue coverage@10:  {coverage_at_k(scores, 10):.3f}")
    print("\nExpected shape: alignment margin and probe R² rise with "
          "training; coverage stays well above the popularity floor.")


if __name__ == "__main__":
    main()
