"""Cross-platform transfer: pre-train on short-video, deploy on e-commerce.

Reproduces the paper's headline workflow (Sec. III-E) at example scale:

1. pre-train PMMRec on the Bili + Kwai short-video sources with the full
   multi-task objective (DAP + NICL + NID + RCL);
2. transfer components to the HM-Shoes e-commerce dataset under two
   settings (full transfer vs user-encoder-only);
3. fine-tune with DAP only and compare against training from scratch.

Run with::

    python examples/cross_platform_transfer.py
"""

from repro import (PMMRec, PMMRecConfig, Trainer, TrainConfig,
                   build_dataset, fuse_datasets, transferred_model)
from repro.eval import evaluate_model


def main() -> None:
    profile = "smoke"
    sources = fuse_datasets([build_dataset("bili", profile=profile),
                             build_dataset("kwai", profile=profile)])
    print(f"pre-training corpus: {sources.num_users} users / "
          f"{sources.num_items} items from 2 platforms")

    pretrained = PMMRec(PMMRecConfig(seed=0))
    fit = Trainer(pretrained, sources,
                  TrainConfig(epochs=8, batch_size=32, patience=3),
                  pretraining=True).fit()
    print(f"pre-trained {fit.epochs_run} epochs "
          f"(val HR@10 {fit.best_metric:.3f})\n")

    target = build_dataset("hm_shoes", profile=profile)
    finetune = TrainConfig(epochs=10, batch_size=16, patience=4)

    rows = []
    for label, setting in (("full transfer", "full"),
                           ("user encoder only", "user_encoder")):
        model = transferred_model(pretrained, setting)
        result = Trainer(model, target, finetune, pretraining=False).fit()
        test = evaluate_model(model, target, target.split.test, ks=(10,))
        rows.append((label, result.curve[0][1], test["hr@10"]))

    scratch = PMMRec(PMMRecConfig(seed=0))
    result = Trainer(scratch, target, finetune, pretraining=True).fit()
    test = evaluate_model(scratch, target, target.split.test, ks=(10,))
    rows.append(("from scratch", result.curve[0][1], test["hr@10"]))

    print(f"{'setting':20s} {'epoch-1 val':>12s} {'test HR@10':>11s}")
    for label, first, hr in rows:
        print(f"{label:20s} {first:12.3f} {hr:11.3f}")
    print("\nExpected shape: full transfer starts highest at epoch 1 and "
          "ends at or above the alternatives (paper Fig. 3 / Table V).")


if __name__ == "__main__":
    main()
