"""Versatility: deploy one multi-modal checkpoint as text- or vision-only.

The paper's Sec. III-E: after multi-modal pre-training, PMMRec can be
deployed on platforms that only have one modality by transferring the
matching item encoder plus the user encoder. This example pre-trains one
model and evaluates all three deployment modes on a downstream dataset.

Run with::

    python examples/modality_versatility.py
"""

from repro import (PMMRec, PMMRecConfig, Trainer, TrainConfig,
                   build_dataset, transferred_model)
from repro.eval import evaluate_model


def main() -> None:
    profile = "smoke"
    source = build_dataset("bili", profile=profile)
    pretrained = PMMRec(PMMRecConfig(seed=0))
    Trainer(pretrained, source,
            TrainConfig(epochs=8, batch_size=32, patience=3),
            pretraining=True).fit()
    print(f"pre-trained on {source.name}\n")

    target = build_dataset("bili_cartoon", profile=profile)
    finetune = TrainConfig(epochs=10, batch_size=16, patience=4)

    print(f"{'deployment':28s} {'test HR@10':>10s} {'test NDCG@10':>13s}")
    for label, setting in (("multi-modal (full)", "full"),
                           ("text-only platform", "text_only"),
                           ("vision-only platform", "vision_only")):
        model = transferred_model(pretrained, setting)
        Trainer(model, target, finetune, pretraining=False).fit()
        test = evaluate_model(model, target, target.split.test, ks=(10,))
        print(f"{label:28s} {test['hr@10']:10.4f} {test['ndcg@10']:13.4f}")
    print("\nExpected shape: single-modality deployments stay competitive "
          "with the full multi-modal one (paper Table V).")


if __name__ == "__main__":
    main()
