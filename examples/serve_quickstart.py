"""Serve recommendations online: registry, micro-batching, HTTP.

Walks the whole serving stack at ``smoke`` scale in a few seconds::

    python examples/serve_quickstart.py

1. load two (dataset, model) scenarios into one registry (the paper's
   transfer story as a serving concern),
2. answer requests through the micro-batched service API,
3. start the stdlib HTTP endpoint on an ephemeral port and query it,
4. benchmark batched top-k retrieval against a full-catalogue sort.

See ``docs/serving.md`` for the architecture and the endpoint contract.
"""

import json
import urllib.request

from repro.serve import (ModelRegistry, RecommendationService,
                         compare_paths, make_server, render_comparison,
                         request_stream)


def main() -> None:
    # -- 1. one process, many scenarios -----------------------------------
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add_all("kwai_food:sasrec,bili_food:pmmrec-text")
    for info in registry.describe():
        print(f"loaded {info['dataset']}:{info['model']} "
              f"({info['num_items']} items, "
              f"index v{info['index_version']}, "
              f"{info['index_nbytes'] / 1024:.0f} KiB)")

    # -- 2. the request API ------------------------------------------------
    service = RecommendationService(registry, max_batch=16, max_wait_ms=2.0)
    scenario = registry.get("kwai_food", "sasrec")
    history = [int(i) for i in scenario.dataset.split.test[0].history]
    answer = service.recommend("kwai_food", "sasrec", history, k=5)
    print(f"\nuser history {history[-3:]} -> top-5 {answer['items']} "
          f"({answer['latency_ms']:.1f} ms)")
    repeat = service.recommend("kwai_food", "sasrec", history, k=5)
    print(f"repeat request: cached={repeat['cached']} "
          f"({repeat['latency_ms']:.1f} ms)")

    # -- 3. the HTTP endpoint ----------------------------------------------
    server = make_server(service, port=0)   # port 0 = pick a free port
    server.start_background()
    body = json.dumps({"dataset": "bili_food", "model": "pmmrec-text",
                       "history": history, "k": 5}).encode()
    request = urllib.request.Request(
        server.url + "/recommend", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        payload = json.load(response)
    print(f"\nPOST {server.url}/recommend -> items {payload['items']}")
    server.shutdown()
    server.server_close()

    # -- 4. why the serving path is shaped this way ------------------------
    recommender = scenario.recommender
    histories = request_stream(scenario.dataset, 64, seed=0)
    comparison = compare_paths(recommender, histories, k=10, batch_size=16)
    print()
    print(render_comparison(comparison, title="smoke-scale benchmark"))

    service.close()

    # -- 5. approximate retrieval at catalogue scale -----------------------
    # Past ~10k items exact scoring stops fitting the latency budget;
    # `retrieval="ivf"`/"lsh" shortlists candidates and re-ranks genuine
    # model scores (docs/serving.md, "Retrieval backends"). On a
    # clustered 20k-item synthetic catalogue:
    from repro.serve import (IVFIndex, LSHIndex, bench_retrieval,
                             render_retrieval, synthetic_catalog,
                             synthetic_queries)
    catalog = synthetic_catalog(20_000, dim=32, seed=0)
    queries = synthetic_queries(catalog, 64, seed=1)
    reports = bench_retrieval(catalog, queries, k=10,
                              backends={"exact": None,
                                        "ivf": IVFIndex(seed=0),
                                        "lsh": LSHIndex(seed=0)})
    print()
    print(render_retrieval(reports, title="retrieval backends (20k items)"))


if __name__ == "__main__":
    main()
