"""Zero-shot cold start: why content beats IDs for unseen items.

The paper's Table VII argument is that an ID model cannot represent items
it has not trained on, while a content model encodes them from text and
images alone. At reproduction scale the paper's own <10-occurrence
construction cannot show this (5-core filtering guarantees every item
several training occurrences — see EXPERIMENTS.md), so this example
realizes the mechanism in its pure form: a slice of the catalogue is
*removed from training entirely* and both models must rank those unseen
items at evaluation time.

Run with::

    python examples/cold_start.py
"""

from dataclasses import replace

import numpy as np

from repro import PMMRec, PMMRecConfig, Trainer, TrainConfig, build_dataset
from repro.baselines import SASRec
from repro.data.splits import DatasetSplit, EvalExample
from repro.eval import evaluate_model


def holdout_items(dataset, fraction: float, rng: np.random.Generator):
    """Split the catalogue into (warm, held-out) item-id sets."""
    items = np.arange(1, dataset.num_items + 1)
    held = rng.choice(items, size=max(int(fraction * len(items)), 1),
                      replace=False)
    return set(items) - set(held.tolist()), set(held.tolist())


def main() -> None:
    dataset = build_dataset("bili", profile="smoke")
    rng = np.random.default_rng(7)
    warm, held = holdout_items(dataset, fraction=0.2, rng=rng)
    print(f"{dataset.name}: holding {len(held)} of {dataset.num_items} "
          f"items out of training entirely")

    # Training sequences with every held-out occurrence removed.
    train = []
    for seq in dataset.split.train:
        kept = seq[np.isin(seq, list(warm))]
        if len(kept) >= 2:
            train.append(kept)
    # Evaluation: rank a held-out item given the (full) preceding history.
    cold_examples = []
    for seq in dataset.sequences:
        for pos in range(2, len(seq)):
            if int(seq[pos]) in held:
                cold_examples.append(
                    EvalExample(history=seq[:pos], target=int(seq[pos])))
    print(f"{len(cold_examples)} zero-shot ranking tasks\n")

    zero_shot = replace(dataset,
                        split=DatasetSplit(train=train,
                                           valid=dataset.split.valid,
                                           test=dataset.split.test))
    config = TrainConfig(epochs=15, batch_size=16, patience=4)

    sasrec = SASRec(dataset.num_items, dim=32, seed=0)
    Trainer(sasrec, zero_shot, config, pretraining=False).fit()
    id_cold = evaluate_model(sasrec, zero_shot, cold_examples, ks=(10,))

    pmmrec = PMMRec(PMMRecConfig(seed=0))
    Trainer(pmmrec, zero_shot, config, pretraining=True).fit()
    mm_cold = evaluate_model(pmmrec, zero_shot, cold_examples, ks=(10,))

    print(f"{'model':10s} {'unseen-item HR@10':>18s} {'NDCG@10':>9s}")
    print(f"{'SASRec':10s} {id_cold['hr@10']:18.4f} "
          f"{id_cold['ndcg@10']:9.4f}")
    print(f"{'PMMRec':10s} {mm_cold['hr@10']:18.4f} "
          f"{mm_cold['ndcg@10']:9.4f}")
    print("\nExpected shape: the ID model collapses on items it never "
          "trained on; the content model ranks them from text+image alone "
          "(the mechanism behind the paper's Table VII).")


if __name__ == "__main__":
    main()
