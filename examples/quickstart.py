"""Quickstart: train PMMRec on one dataset and recommend next items.

Runs in well under a minute on the ``smoke`` profile::

    python examples/quickstart.py
"""

import numpy as np

from repro import PMMRec, PMMRecConfig, Trainer, TrainConfig, build_dataset
from repro.eval import evaluate_model
from repro.text import Tokenizer


def main() -> None:
    # A small single-category slice of the Kwai-like platform. Items carry
    # text tokens and synthetic cover images; there are no usable item IDs.
    dataset = build_dataset("kwai_food", profile="smoke")
    print(f"dataset {dataset.name}: {dataset.num_users} users, "
          f"{dataset.num_items} items")

    model = PMMRec(PMMRecConfig(seed=0))
    result = Trainer(model, dataset,
                     TrainConfig(epochs=12, batch_size=16, patience=4),
                     pretraining=True).fit()
    print(f"trained {result.epochs_run} epochs, "
          f"best validation HR@10 = {result.best_metric:.3f}")

    metrics = evaluate_model(model, dataset, dataset.split.test, ks=(10, 20))
    print("test metrics:", {k: round(v, 4) for k, v in metrics.items()})

    # Recommend for one user: score the full catalogue given their history.
    tokenizer = Tokenizer()
    example = dataset.split.test[0]
    scores = model.score_histories(dataset, [example.history])[0]
    scores[0] = -np.inf                      # drop the padding column
    top = np.argsort(-scores)[:5]
    print("\nuser history (last 3 items):")
    for item in example.history[-3:]:
        print("   ", " ".join(tokenizer.decode(dataset.text_tokens[item])[:6]))
    print("top-5 recommendations:")
    for rank, item in enumerate(top, 1):
        words = " ".join(tokenizer.decode(dataset.text_tokens[item])[:6])
        marker = "  <- held-out next item" if item == example.target else ""
        print(f"  {rank}. item {item:4d}  {words}{marker}")


if __name__ == "__main__":
    main()
